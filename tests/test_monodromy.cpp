/**
 * @file
 * Tests for the monodromy library: the SWAP-mirror map (Appendix B),
 * LogSpec and the rho involution, the two-layer feasibility oracle
 * against known decompositions, the Fig. 4 regions and their paper
 * volumes (68.5% / 75%), and depth prediction.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "linalg/su2.hpp"
#include "monodromy/depth.hpp"
#include "monodromy/logspec.hpp"
#include "monodromy/mirror.hpp"
#include "monodromy/oracle.hpp"
#include "monodromy/regions.hpp"
#include "monodromy/volume.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {
namespace {

TEST(Mirror, CnotPairsWithIswap)
{
    // The paper's example: CNOT and iSWAP synthesize SWAP in 2.
    EXPECT_LT(swapMirror(coords::cnot()).distance(coords::iswap()),
              1e-12);
    EXPECT_LT(swapMirror(coords::iswap()).distance(coords::cnot()),
              1e-12);
}

TEST(Mirror, IsAnInvolution)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const CartanCoords c = sampleChamberPoint(rng);
        const CartanCoords m = swapMirror(c);
        EXPECT_LT(swapMirror(m).distance(canonicalize(c)), 1e-9)
            << c.str();
    }
}

TEST(Mirror, BGateIsFixedPoint)
{
    EXPECT_TRUE(isSwapMirrorFixedPoint(coords::bGate()));
    EXPECT_TRUE(isSwapMirrorFixedPoint(coords::sqrtSwap()));
    EXPECT_TRUE(isSwapMirrorFixedPoint(coords::sqrtSwapDag()));
    EXPECT_FALSE(isSwapMirrorFixedPoint(coords::cnot()));
    EXPECT_FALSE(isSwapMirrorFixedPoint(coords::identity0()));
}

TEST(Mirror, L0L1PointsAreExactlyFixedPoints)
{
    // Sample along L0 and L1; all should be fixed points, and fixed
    // points off the segments should not exist (probe random points).
    CartanCoords a, b;
    l0Segment(a, b);
    for (double s = 0.0; s <= 1.0; s += 0.1) {
        const CartanCoords p = a + (b - a) * s;
        EXPECT_TRUE(isSwapMirrorFixedPoint(p, 1e-9)) << p.str();
        EXPECT_LT(distanceToL0L1(p), 1e-9);
    }
    l1Segment(a, b);
    for (double s = 0.0; s <= 1.0; s += 0.1) {
        const CartanCoords p = a + (b - a) * s;
        EXPECT_TRUE(isSwapMirrorFixedPoint(p, 1e-9)) << p.str();
    }
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const CartanCoords p = sampleChamberPoint(rng);
        if (distanceToL0L1(p) > 1e-3)
            EXPECT_FALSE(isSwapMirrorFixedPoint(p, 1e-6)) << p.str();
    }
}

TEST(LogSpec, SumsToZeroAndSorted)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const LogSpec a = logSpecFromCoords(sampleChamberPoint(rng));
        EXPECT_NEAR(a[0] + a[1] + a[2] + a[3], 0.0, 1e-9);
        EXPECT_GE(a[0], a[1] - 1e-12);
        EXPECT_GE(a[1], a[2] - 1e-12);
        EXPECT_GE(a[2], a[3] - 1e-12);
    }
}

TEST(LogSpec, RhoIsAnInvolution)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        const LogSpec a = logSpecFromCoords(sampleChamberPoint(rng));
        EXPECT_TRUE(logSpecEqual(rho(rho(a)), a, 1e-9));
    }
}

TEST(LogSpec, RhoPreservesTheGateClass)
{
    // LogSpec and rho(LogSpec) describe the same local class.
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const CartanCoords c = sampleChamberPoint(rng);
        const LogSpec a = logSpecFromCoords(c);
        const CartanCoords c1 = coordsFromLogSpec(a);
        const CartanCoords c2 = coordsFromLogSpec(rho(a));
        EXPECT_LT(c1.distance(canonicalize(c)), 1e-8);
        EXPECT_LT(c2.distance(canonicalize(c)), 1e-8)
            << c.str() << " vs " << c2.str();
    }
}

TEST(LogSpec, MatrixAndCoordsAgree)
{
    EXPECT_TRUE(logSpecEqual(logSpec(cnotGate()),
                             logSpecFromCoords(coords::cnot()), 1e-7));
    EXPECT_TRUE(logSpecEqual(logSpec(swapGate()),
                             logSpecFromCoords(coords::swap()), 1e-7));
}

// --- Oracle ---------------------------------------------------------

OracleOptions
fastOracle()
{
    OracleOptions o;
    o.restarts = 8;
    o.nm_iters = 500;
    return o;
}

TEST(Oracle, TwoCnotsCannotMakeSwap)
{
    EXPECT_FALSE(
        twoLayerFeasible(swapGate(), cnotGate(), cnotGate(),
                         fastOracle()));
}

TEST(Oracle, CnotPlusIswapMakesSwap)
{
    // The mirror pair of the paper's Fig. 4(b) discussion.
    EXPECT_TRUE(twoLayerFeasible(swapGate(), cnotGate(), iswapGate(),
                                 fastOracle()));
}

TEST(Oracle, ThreeCnotsMakeSwap)
{
    EXPECT_TRUE(
        uniformLayerFeasible(swapGate(), cnotGate(), 3, fastOracle()));
}

TEST(Oracle, TwoSqrtIswapMakeCnot)
{
    EXPECT_TRUE(uniformLayerFeasible(cnotGate(), sqrtIswapGate(), 2,
                                     fastOracle()));
}

TEST(Oracle, TwoSqrtIswapCannotMakeSwap)
{
    EXPECT_FALSE(uniformLayerFeasible(swapGate(), sqrtIswapGate(), 2,
                                      fastOracle()));
}

TEST(Oracle, ThreeSqrtIswapMakeSwap)
{
    EXPECT_TRUE(uniformLayerFeasible(swapGate(), sqrtIswapGate(), 3,
                                     fastOracle()));
}

TEST(Oracle, TwoBGatesMakeAnything)
{
    // The B gate synthesizes any 2Q gate in 2 layers (Section II-C).
    Rng rng(6);
    for (int i = 0; i < 5; ++i) {
        const Mat4 target = randomSU4(rng);
        EXPECT_TRUE(twoLayerFeasible(target, bGate(), bGate(),
                                     fastOracle()));
    }
}

TEST(Oracle, ConstructedSandwichesAreFeasible)
{
    // V = B w C for random middle locals must be 2-layer feasible.
    Rng rng(7);
    for (int i = 0; i < 10; ++i) {
        const Mat4 b = randomSU4(rng);
        const Mat4 c = randomSU4(rng);
        const Mat4 w = randomLocal4(rng);
        const Mat4 target = b * w * c;
        EXPECT_TRUE(twoLayerFeasible(target, b, c, fastOracle()))
            << "case " << i;
    }
}

TEST(Oracle, IdentityFromMirroredPair)
{
    // B then B^dag reaches the identity class.
    Rng rng(8);
    const Mat4 b = randomSU4(rng);
    EXPECT_TRUE(twoLayerFeasible(Mat4::identity(), b, b.dagger(),
                                 fastOracle()));
}

TEST(Oracle, SingleLayerComparesClasses)
{
    EXPECT_TRUE(uniformLayerFeasible(czGate(), cnotGate(), 1));
    EXPECT_FALSE(uniformLayerFeasible(swapGate(), cnotGate(), 1));
}

TEST(Oracle, WeakGateCannotMakeCnotInTwo)
{
    const Mat4 weak = canonicalGate(0.1, 0.02, 0.0);
    EXPECT_FALSE(
        uniformLayerFeasible(cnotGate(), weak, 2, fastOracle()));
}

// --- Regions --------------------------------------------------------

TEST(Regions, NamedGateMembership)
{
    // sqiSW: SWAP in 3, CNOT in 2 (the baseline's properties).
    EXPECT_TRUE(canSynthesizeSwapIn3Layers(coords::sqrtIswap()));
    EXPECT_TRUE(canSynthesizeCnotIn2Layers(coords::sqrtIswap()));
    // CNOT: SWAP in 3 (classic result), CNOT in 2.
    EXPECT_TRUE(canSynthesizeSwapIn3Layers(coords::cnot()));
    EXPECT_TRUE(canSynthesizeCnotIn2Layers(coords::cnot()));
    // iSWAP: SWAP in 3.
    EXPECT_TRUE(canSynthesizeSwapIn3Layers(coords::iswap()));
    // B: SWAP in 2 (fixed point), and 3; CNOT in 2.
    EXPECT_TRUE(canSynthesizeSwapIn2Layers(coords::bGate()));
    EXPECT_TRUE(canSynthesizeSwapIn3Layers(coords::bGate()));
    EXPECT_TRUE(canSynthesizeCnotIn2Layers(coords::bGate()));
    // Identity: nothing.
    EXPECT_FALSE(canSynthesizeSwapIn3Layers(coords::identity0()));
    EXPECT_FALSE(canSynthesizeCnotIn2Layers(coords::identity0()));
    // SWAP: 1 layer for SWAP.
    EXPECT_TRUE(canSynthesizeSwapIn1Layer(coords::swap()));
    EXPECT_FALSE(canSynthesizeSwapIn1Layer(coords::cnot()));
    // Near-identity gates: unable.
    EXPECT_FALSE(canSynthesizeSwapIn3Layers({0.08, 0.04, 0.0}));
    EXPECT_FALSE(canSynthesizeCnotIn2Layers({0.08, 0.04, 0.0}));
}

TEST(Regions, MirrorPairPredicate)
{
    EXPECT_TRUE(
        canSynthesizeSwapIn2Layers(coords::cnot(), coords::iswap()));
    EXPECT_FALSE(
        canSynthesizeSwapIn2Layers(coords::cnot(), coords::cnot()));
}

TEST(Regions, CphaseAxisIsUnableBelowCz)
{
    // Gates on the XX axis strictly below CZ cannot do SWAP in 3
    // (the axis lies on the complement-tetrahedron boundary, not on
    // the entry face).
    for (double tx : {0.1, 0.2, 0.3, 0.4, 0.45})
        EXPECT_FALSE(canSynthesizeSwapIn3Layers({tx, 0.0, 0.0})) << tx;
    // CZ itself (a vertex of the entry face) is able.
    EXPECT_TRUE(canSynthesizeSwapIn3Layers(coords::cnot()));
}

TEST(Regions, TetrahedraVolumesMatchPaper)
{
    // Complement volumes: SWAP-3 able = 68.5%, CNOT-2 able = 75%.
    double swap_complement = 0.0;
    for (const auto &t : swap3ComplementTetrahedra())
        swap_complement += t.volume();
    EXPECT_NEAR(swap_complement / weylChamberVolume(), 0.315, 0.002);

    double cnot_complement = 0.0;
    for (const auto &t : cnot2ComplementTetrahedra())
        cnot_complement += t.volume();
    EXPECT_NEAR(cnot_complement / weylChamberVolume(), 0.25, 1e-9);
}

TEST(Regions, MonteCarloVolumesMatchPaper)
{
    Rng rng(9);
    const double frac_swap3 = chamberVolumeFraction(
        [](const CartanCoords &c) {
            return canSynthesizeSwapIn3Layers(c);
        },
        40000, rng);
    EXPECT_NEAR(frac_swap3, 0.685, 0.01);

    const double frac_cnot2 = chamberVolumeFraction(
        [](const CartanCoords &c) {
            return canSynthesizeCnotIn2Layers(c);
        },
        40000, rng);
    EXPECT_NEAR(frac_cnot2, 0.75, 0.01);
}

TEST(Regions, OracleAgreesWithSwap3Region)
{
    // Cross-validate the closed-form region against the numerical
    // oracle away from region boundaries.
    Rng rng(10);
    OracleOptions opts = fastOracle();
    int checked = 0;
    while (checked < 25) {
        const CartanCoords c = sampleChamberPoint(rng);
        // Skip points within 0.02 of any complement boundary.
        bool near_boundary = false;
        for (const auto &t : swap3ComplementTetrahedra()) {
            const bool inside_wide = t.contains(c, 0.02);
            const bool inside_narrow = t.contains(c, -0.02);
            if (inside_wide != inside_narrow)
                near_boundary = true;
        }
        if (near_boundary)
            continue;
        ++checked;
        const Mat4 g = canonicalGate(c.tx, c.ty, c.tz);
        const bool region = canSynthesizeSwapIn3Layers(c);
        const bool oracle = uniformLayerFeasible(swapGate(), g, 3, opts);
        EXPECT_EQ(region, oracle) << c.str();
    }
}

TEST(Regions, OracleAgreesWithCnot2Region)
{
    Rng rng(11);
    OracleOptions opts = fastOracle();
    int checked = 0;
    while (checked < 25) {
        const CartanCoords c = sampleChamberPoint(rng);
        bool near_boundary = false;
        for (const auto &t : cnot2ComplementTetrahedra()) {
            const bool inside_wide = t.contains(c, 0.02);
            const bool inside_narrow = t.contains(c, -0.02);
            if (inside_wide != inside_narrow)
                near_boundary = true;
        }
        if (near_boundary)
            continue;
        ++checked;
        const Mat4 g = canonicalGate(c.tx, c.ty, c.tz);
        const bool region = canSynthesizeCnotIn2Layers(c);
        const bool oracle = uniformLayerFeasible(cnotGate(), g, 2, opts);
        EXPECT_EQ(region, oracle) << c.str();
    }
}

TEST(Regions, Criterion2IsIntersection)
{
    Rng rng(12);
    for (int i = 0; i < 500; ++i) {
        const CartanCoords c = sampleChamberPoint(rng);
        EXPECT_EQ(inCriterion2Region(c),
                  canSynthesizeSwapIn3Layers(c)
                      && canSynthesizeCnotIn2Layers(c));
    }
}

// --- Depth prediction ----------------------------------------------

TEST(Depth, SwapDepths)
{
    EXPECT_EQ(predictSwapDepth(coords::swap()), 1);
    EXPECT_EQ(predictSwapDepth(coords::bGate()), 2);
    EXPECT_EQ(predictSwapDepth(coords::sqrtSwap()), 2);
    EXPECT_EQ(predictSwapDepth(coords::cnot()), 3);
    EXPECT_EQ(predictSwapDepth(coords::iswap()), 3);
    EXPECT_EQ(predictSwapDepth(coords::sqrtIswap()), 3);
    EXPECT_EQ(predictSwapDepth({0.08, 0.04, 0.0}), 4);
}

TEST(Depth, CnotDepths)
{
    EXPECT_EQ(predictCnotDepth(cnotGate()), 1);
    EXPECT_EQ(predictCnotDepth(czGate()), 1);
    EXPECT_EQ(predictCnotDepth(sqrtIswapGate()), 2);
    EXPECT_EQ(predictCnotDepth(bGate()), 2);
    EXPECT_EQ(predictCnotDepth(iswapGate()), 2);
}

TEST(Depth, GenericTargets)
{
    OracleOptions opts = fastOracle();
    EXPECT_EQ(predictDepth(Mat4::identity(), cnotGate(), 4, opts), 0);
    EXPECT_EQ(predictDepth(swapGate(), cnotGate(), 4, opts), 3);
    EXPECT_EQ(predictDepth(swapGate(), bGate(), 4, opts), 2);
    EXPECT_EQ(predictDepth(swapGate(), swapGate(), 4, opts), 1);
    EXPECT_EQ(predictDepth(cnotGate(), sqrtIswapGate(), 4, opts), 2);
    // CPHASE(pi/2) from one CPHASE(pi/2): depth 1.
    EXPECT_EQ(predictDepth(cphaseGate(kPi / 2), cphaseGate(kPi / 2), 4,
                           opts),
              1);
    // iSWAP from two sqiSW: depth 2.
    EXPECT_EQ(predictDepth(iswapGate(), sqrtIswapGate(), 4, opts), 2);
}

TEST(Depth, WeakGateSwapExceedsLimit)
{
    // CPHASE(0.3 pi) has tx = 0.15; four layers cannot reach SWAP
    // (interaction content bound), so the ladder reports max+1.
    const Mat4 weak = cphaseGate(0.3 * kPi);
    OracleOptions opts = fastOracle();
    opts.restarts = 6;
    EXPECT_EQ(predictDepth(swapGate(), weak, 4, opts), 5);
}

TEST(Volume, ChamberSamplerStaysInChamber)
{
    Rng rng(13);
    const Tetrahedron chamber = weylChamberTetrahedron();
    for (int i = 0; i < 2000; ++i)
        EXPECT_TRUE(chamber.contains(sampleChamberPoint(rng)));
}

TEST(Volume, FractionOfTrivialPredicates)
{
    Rng rng(14);
    EXPECT_DOUBLE_EQ(
        chamberVolumeFraction([](const CartanCoords &) { return true; },
                              100, rng),
        1.0);
    EXPECT_DOUBLE_EQ(chamberVolumeFraction(
                         [](const CartanCoords &) { return false; },
                         100, rng),
                     0.0);
}

} // namespace
} // namespace qbasis
