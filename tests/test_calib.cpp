/**
 * @file
 * Tests for the calibration library: QPT reconstruction quality and
 * shot-noise scaling, GST refinement, drift model, and the two-stage
 * calibration protocol on a simulated pair.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "calib/drift.hpp"
#include "calib/gst.hpp"
#include "calib/protocol.hpp"
#include "calib/qpt.hpp"
#include "core/criteria.hpp"
#include "linalg/random.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {
namespace {

TEST(Qpt, ExactShotsRecoverGateExactly)
{
    Rng rng(1);
    QptOptions opts;
    opts.shots = 0; // exact expectation values
    for (const Mat4 &gate : {cnotGate(), iswapGate(), sqrtIswapGate(),
                             canonicalGate(0.31, 0.22, 0.08)}) {
        const QptResult r = simulateQpt(gate, opts, rng);
        EXPECT_LT(traceInfidelity(r.estimate, gate), 1e-9);
        EXPECT_NEAR(r.choi_purity, 1.0, 1e-9);
    }
}

TEST(Qpt, RandomUnitariesRecovered)
{
    Rng rng(2);
    QptOptions opts;
    opts.shots = 0;
    for (int i = 0; i < 10; ++i) {
        const Mat4 gate = randomSU4(rng);
        const QptResult r = simulateQpt(gate, opts, rng);
        EXPECT_LT(traceInfidelity(r.estimate, gate), 1e-9);
    }
}

TEST(Qpt, ShotNoiseScalesDown)
{
    Rng rng(3);
    const Mat4 gate = sqrtIswapGate();
    auto avg_err = [&](int shots, int reps) {
        QptOptions opts;
        opts.shots = shots;
        double sum = 0.0;
        for (int i = 0; i < reps; ++i)
            sum += traceInfidelity(
                simulateQpt(gate, opts, rng).estimate, gate);
        return sum / reps;
    };
    const double err_small = avg_err(100, 5);
    const double err_large = avg_err(6400, 5);
    EXPECT_GT(err_small, err_large);
    // Infidelity ~ shots^-1: 64x shots => ~64x error; allow slack.
    EXPECT_GT(err_small / err_large, 8.0);
}

TEST(Qpt, SpamErrorRaisesNoiseFloorButNotBias)
{
    // Depolarizing SPAM lowers the Choi purity yet the extracted
    // unitary stays close to the truth (the dominant eigenvector is
    // unchanged) -- QPT "cannot separate SPAM from the gate".
    Rng rng(4);
    QptOptions opts;
    opts.shots = 0;
    opts.spam_error = 0.05;
    const QptResult r = simulateQpt(iswapGate(), opts, rng);
    EXPECT_LT(r.choi_purity, 0.99);
    EXPECT_LT(traceInfidelity(r.estimate, iswapGate()), 1e-6);
}

TEST(Gst, RefinesToErrorFloor)
{
    Rng rng(5);
    GstOptions opts;
    opts.error_floor = 1e-4;
    const Mat4 gate = canonicalGate(0.27, 0.24, 0.05);
    double worst = 0.0;
    for (int i = 0; i < 10; ++i) {
        const Mat4 est = simulateGst(gate, opts, rng);
        worst = std::max(worst, traceInfidelity(est, gate));
    }
    EXPECT_LT(worst, 1e-5);
    EXPECT_GT(worst, 0.0);
}

TEST(Drift, SmallRelativeChanges)
{
    Rng rng(6);
    const GridDevice dev{GridDeviceParams{}};
    const PairDeviceParams p = dev.edgeParams(0);
    DriftModel model;
    const PairDeviceParams d = driftParams(p, model, rng);
    EXPECT_NEAR(d.qubit_a.omega / p.qubit_a.omega, 1.0, 1e-3);
    EXPECT_NEAR(d.g_ac / p.g_ac, 1.0, 1e-2);
    EXPECT_NE(d.qubit_a.omega, p.qubit_a.omega);
}

class ProtocolTest : public ::testing::Test
{
  protected:
    static const PairSimulator &sim()
    {
        static const GridDevice dev{GridDeviceParams{}};
        static const PairSimulator s(dev.edgeParams(0),
                                     dev.couplerOmegaMax());
        return s;
    }
};

TEST_F(ProtocolTest, InitialTuneupFindsCriterion1Gate)
{
    Rng rng(7);
    TuneupOptions opts;
    opts.xi = 0.04;
    opts.max_ns = 20.0;
    opts.qpt.shots = 800;
    opts.gst.error_floor = 1e-5;
    const TuneupResult r = initialTuneup(
        sim(), criterionPredicate(SelectionCriterion::Criterion1),
        opts, rng);
    ASSERT_TRUE(r.success);
    // The strong-drive gate lands near 10 ns on this device.
    EXPECT_GT(r.duration_ns, 5.0);
    EXPECT_LT(r.duration_ns, 20.0);
    EXPECT_TRUE(criterionSatisfied(SelectionCriterion::Criterion1,
                                   cartanCoords(r.gate)));
    EXPECT_GE(r.candidates.size(), 1u);
    // The measured (QPT) trajectory covers the window at 1 ns steps.
    EXPECT_GE(r.measured.size(), 20u);
}

TEST_F(ProtocolTest, QptImprecisionKeepsCandidateHalo)
{
    Rng rng(8);
    TuneupOptions opts;
    opts.xi = 0.04;
    opts.max_ns = 20.0;
    opts.qpt.shots = 300; // noisy
    opts.candidate_halo = 2;
    const TuneupResult r = initialTuneup(
        sim(), criterionPredicate(SelectionCriterion::Criterion1),
        opts, rng);
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.candidates.size(), 2u);
    EXPECT_LE(r.candidates.size(), 5u);
}

TEST_F(ProtocolTest, RetuneTracksDrift)
{
    Rng rng(9);
    TuneupOptions opts;
    opts.xi = 0.04;
    opts.max_ns = 20.0;
    opts.qpt.shots = 800;
    const TuneupResult tuneup = initialTuneup(
        sim(), criterionPredicate(SelectionCriterion::Criterion1),
        opts, rng);
    ASSERT_TRUE(tuneup.success);

    // Drift the device, then retune.
    const GridDevice dev{GridDeviceParams{}};
    DriftModel model;
    const PairDeviceParams drifted_params =
        driftParams(dev.edgeParams(0), model, rng);
    const PairSimulator drifted(drifted_params, dev.couplerOmegaMax());

    const RetuneResult r =
        retune(drifted, tuneup, GstOptions{}, rng);
    ASSERT_TRUE(r.success);
    EXPECT_DOUBLE_EQ(r.duration_ns, tuneup.duration_ns);
    // The refreshed gate stays close to the tuneup gate (drift is
    // slow) but is not identical.
    EXPECT_LT(r.gate_shift, 0.05);
    EXPECT_GT(r.gate_shift, 0.0);
    // And it still satisfies the criterion.
    EXPECT_TRUE(criterionSatisfied(SelectionCriterion::Criterion1,
                                   cartanCoords(r.gate), 1e-6));
}

TEST_F(ProtocolTest, RetuneAfterFailedTuneupReturnsFailedResult)
{
    // A failed initial tuneup must produce a failed, status-carrying
    // RetuneResult (not abort the process): the async scheduler's
    // retry/quarantine path owns the failure.
    Rng rng(11);
    TuneupResult failed;
    failed.success = false;
    const RetuneResult r = retune(sim(), failed, GstOptions{}, rng);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.omega_d, 0.0);
    EXPECT_EQ(r.gate_shift, 0.0);
}

TEST(Protocol, FailsGracefullyOnShortWindow)
{
    const GridDevice dev{GridDeviceParams{}};
    const PairSimulator s(dev.edgeParams(1), dev.couplerOmegaMax());
    Rng rng(10);
    TuneupOptions opts;
    opts.xi = 0.005;
    opts.max_ns = 5.0; // far too short for the baseline amplitude
    opts.qpt.shots = 0;
    const TuneupResult r = initialTuneup(
        s, criterionPredicate(SelectionCriterion::Criterion1), opts,
        rng);
    EXPECT_FALSE(r.success);
}

} // namespace
} // namespace qbasis
