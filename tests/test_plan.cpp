/**
 * @file
 * Plan-cache tests: the structural-hash contract (parameter values
 * never hash; gate order and qubit mapping always do), bit-identical
 * compileResponseDigest across plan-miss / memo / replay / fallback
 * serve paths, the epoch-sweep invalidation property (a recalibration
 * evicts exactly the plans whose epoch vector died, and a swept plan
 * is never served), and snapshot round-trips of the plans section
 * (byte-stable encoding, CRC rejection, version rejection).
 */

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qft.hpp"
#include "calib/drift.hpp"
#include "serve/compile_service.hpp"
#include "synth/cache_io.hpp"
#include "transpile/plan.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {
namespace {

/** Cheap-but-converging synthesis settings for test fleets. */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

/** A 2x2 grid device (4 qubits); edge_limit keeps calibration fast. */
FleetDeviceSpec
quadSpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 2;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

CompileServiceOptions
tinyServiceOptions(bool plan_cache)
{
    CompileServiceOptions opts;
    opts.fleet.shards = 2;
    opts.fleet.threads = 2;
    opts.fleet.synth = cheapSynth();
    opts.fleet.calib.edge_limit = 1;
    opts.queue_capacity = 64;
    opts.dispatchers = 2;
    opts.max_batch = 4;
    opts.plan_cache = plan_cache;
    return opts;
}

/**
 * A hardware-efficient ansatz shape: parametric 1Q layers around
 * fixed CX entanglers. Varying `theta` changes every rotation angle
 * but no 2Q gate, so a repeat at a new theta replays the stored plan
 * against the *same* published Weyl classes (the replay tier's
 * intended traffic).
 */
Circuit
ansatzCircuit(int n, double theta)
{
    Circuit c(n);
    for (int q = 0; q < n; ++q) {
        c.h(q);
        c.rz(q, theta + 0.1 * q);
    }
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    for (int q = 0; q < n; ++q)
        c.ry(q, 0.5 * theta - 0.2 * q);
    return c;
}

/** A shape whose parameter IS the Weyl class: rzz(gamma) changes the
 *  canonical coordinates, so a new gamma cannot replay against the
 *  old published class and must fall back to the full pipeline. */
Circuit
entanglerCircuit(double gamma)
{
    Circuit c(3);
    c.h(0);
    c.h(1);
    c.rzz(0, 1, gamma);
    c.rzz(1, 2, gamma * 0.5);
    return c;
}

/** Minimal synthetic plan for unit-level cache tests. */
TranspilePlan
syntheticPlan(uint64_t structural, std::vector<DeviceEpoch> epochs)
{
    TranspilePlan p;
    p.key.structural_hash = structural;
    p.key.options_hash = 7;
    p.key.epochs = std::move(epochs);
    p.num_physical = 4;
    p.initial_layout = {0, 1};
    p.final_layout = {1, 0};
    p.swaps_inserted = 1;
    p.ops = {{0, 0, 1}, {-1, 1, 2}, {1, 2, -1}};
    DecompositionCache::ClassKey k;
    k.context = structural;
    k.qx = 3;
    k.qy = 2;
    k.qz = 1;
    p.class_keys = {k};
    return p;
}

class PlanTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

// --- Structural hash contract ---------------------------------------

TEST_F(PlanTest, StructuralHashIgnoresParameterValuesOnly)
{
    // Same shape, different parameter values: one routing program
    // serves both, so the structural hash must collide -- and the
    // parameter fingerprint must not.
    const Circuit a = ansatzCircuit(3, 0.7);
    const Circuit b = ansatzCircuit(3, 1.9);
    EXPECT_EQ(structuralCircuitHash(a), structuralCircuitHash(b));
    EXPECT_NE(circuitParamFingerprint(a), circuitParamFingerprint(b));

    // Identical circuits agree on both.
    const Circuit a2 = ansatzCircuit(3, 0.7);
    EXPECT_EQ(structuralCircuitHash(a), structuralCircuitHash(a2));
    EXPECT_EQ(circuitParamFingerprint(a),
              circuitParamFingerprint(a2));

    // Custom-matrix gates: the matrix entries are parameters too.
    Circuit u1(2), u2(2);
    u1.rzz(0, 1, 0.4);
    u2.rzz(0, 1, 0.4);
    u1.unitary1q(0, Mat2(Complex(0.8, -0.6), 0.0, 0.0,
                         Complex(0.8, 0.6)));
    u2.unitary1q(0, Mat2(Complex(0.6, -0.8), 0.0, 0.0,
                         Complex(0.6, 0.8)));
    EXPECT_EQ(structuralCircuitHash(u1), structuralCircuitHash(u2));
    EXPECT_NE(circuitParamFingerprint(u1),
              circuitParamFingerprint(u2));
}

TEST_F(PlanTest, StructuralHashSeparatesNearCollisionPairs)
{
    // Near-collision pair 1: same gate multiset, different order.
    // Routing reads the DAG, so order must change the hash.
    Circuit order_a(3), order_b(3);
    order_a.cx(0, 1);
    order_a.cx(1, 2);
    order_b.cx(1, 2);
    order_b.cx(0, 1);
    EXPECT_NE(structuralCircuitHash(order_a),
              structuralCircuitHash(order_b));

    // Near-collision pair 2: same shape, permuted qubit mapping.
    Circuit map_a(3), map_b(3);
    map_a.h(0);
    map_a.cx(0, 1);
    map_b.h(1);
    map_b.cx(1, 0);
    EXPECT_NE(structuralCircuitHash(map_a),
              structuralCircuitHash(map_b));

    // Near-collision pair 3: swapped control/target only.
    Circuit dir_a(2), dir_b(2);
    dir_a.cx(0, 1);
    dir_b.cx(1, 0);
    EXPECT_NE(structuralCircuitHash(dir_a),
              structuralCircuitHash(dir_b));

    // Near-collision pair 4: same qubits and arity, different kind.
    Circuit kind_a(2), kind_b(2);
    kind_a.rx(0, 0.5);
    kind_b.ry(0, 0.5);
    EXPECT_NE(structuralCircuitHash(kind_a),
              structuralCircuitHash(kind_b));

    // Register width matters even when the gate list is identical.
    Circuit wide(4), narrow(3);
    wide.cx(0, 1);
    narrow.cx(0, 1);
    EXPECT_NE(structuralCircuitHash(wide),
              structuralCircuitHash(narrow));
}

// --- Serve-path digest identity -------------------------------------

TEST_F(PlanTest, AllPlanPathsProduceBitIdenticalDigests)
{
    // Two identically-specced services: `off` always runs the full
    // pipeline, `on` serves from the plan cache. Every pass below
    // must produce bit-identical per-request digests across the two.
    CompileService off(tinyServiceOptions(false));
    CompileService on(tinyServiceOptions(true));
    off.start({quadSpec(31)});
    on.start({quadSpec(31)});

    const auto check = [&](const CompileRequest &req,
                           PlanServePath want_path) {
        const CompileResponse r_off = off.compileSync(req);
        const CompileResponse r_on = on.compileSync(req);
        ASSERT_EQ(r_off.status, CompileStatus::Ok) << r_off.error;
        ASSERT_EQ(r_on.status, CompileStatus::Ok) << r_on.error;
        EXPECT_EQ(compileResponseDigest(r_on),
                  compileResponseDigest(r_off))
            << "plan path diverged for request " << req.request_id;
        EXPECT_TRUE(compileResponsesBitIdentical(r_on, r_off));
        EXPECT_EQ(r_off.plan_path, PlanServePath::None);
        EXPECT_EQ(r_on.plan_path, want_path)
            << "request " << req.request_id;
    };

    // Pass 1: cold -- both sides run the pipeline; `on` stores plans.
    check(CompileRequest(1, 0, "ansatz", ansatzCircuit(3, 0.7)),
          PlanServePath::None);
    check(CompileRequest(2, 0, "qft3", qftCircuit(3)),
          PlanServePath::None);
    check(CompileRequest(3, 0, "rzz", entanglerCircuit(0.4)),
          PlanServePath::None);

    // Pass 2: exact repeats -- memo tier, no pipeline at all.
    check(CompileRequest(4, 0, "ansatz", ansatzCircuit(3, 0.7)),
          PlanServePath::Memo);
    check(CompileRequest(5, 0, "qft3", qftCircuit(3)),
          PlanServePath::Memo);

    // Pass 3: same shape, new 1Q parameters -- replay tier (the 2Q
    // entanglers are parameter-free, so every class is published).
    check(CompileRequest(6, 0, "ansatz", ansatzCircuit(3, 1.9)),
          PlanServePath::Replay);

    // Pass 4: new parameters that move the Weyl class -- the stored
    // plan cannot replay (class unpublished) and must fall back to
    // the full pipeline, still bit-identical.
    check(CompileRequest(7, 0, "rzz", entanglerCircuit(0.9)),
          PlanServePath::None);
    // ... and the fallback re-captured the plan: exact repeat memos.
    check(CompileRequest(8, 0, "rzz", entanglerCircuit(0.9)),
          PlanServePath::Memo);

    const PlanCacheStats ps = on.driver().planCache().stats();
    EXPECT_GE(ps.memo_hits, 3u);
    EXPECT_GE(ps.replay_hits, 1u);
    EXPECT_GE(ps.stores, 4u); // 3 cold + the rzz re-capture
    EXPECT_EQ(on.stats().plan_hits, 4u);
    EXPECT_EQ(off.stats().plan_hits, 0u);
    EXPECT_EQ(off.driver().planCache().stats().stores, 0u);

    on.stop();
    off.stop();
}

// --- Epoch-sweep invalidation ---------------------------------------

TEST_F(PlanTest, RetireSweepsExactlyThePlansWhoseEpochVectorDied)
{
    // Property: after retire(live), a plan survives iff every
    // (device, epoch) coordinate it references matches `live`
    // exactly. Randomized rounds against a brute-force oracle.
    Rng rng(0x9137);
    for (int round = 0; round < 50; ++round) {
        PlanCache pc;
        const int devices = 3;
        std::vector<DeviceEpoch> live;
        for (int d = 0; d < devices; ++d)
            live.push_back({d, 1 + rng.uniformInt(3)});

        std::vector<TranspilePlan> plans;
        const size_t n = 4 + rng.uniformInt(8);
        for (size_t i = 0; i < n; ++i) {
            std::vector<DeviceEpoch> epochs;
            // 1..2 coordinates over devices 0..3 (3 = unknown).
            const size_t coords = 1 + rng.uniformInt(2);
            std::set<int> used;
            for (size_t c = 0; c < coords; ++c) {
                const int dev =
                    static_cast<int>(rng.uniformInt(devices + 1));
                if (!used.insert(dev).second)
                    continue;
                epochs.push_back({dev, 1 + rng.uniformInt(3)});
            }
            std::sort(epochs.begin(), epochs.end());
            plans.push_back(syntheticPlan(100 + i, epochs));
        }
        for (const TranspilePlan &p : plans)
            pc.store(p);

        const auto alive = [&](const TranspilePlan &p) {
            for (const DeviceEpoch &de : p.key.epochs) {
                bool match = false;
                for (const DeviceEpoch &l : live)
                    match |= (l == de);
                if (!match)
                    return false;
            }
            return true;
        };
        size_t expect_dead = 0;
        for (const TranspilePlan &p : plans)
            if (!alive(p))
                ++expect_dead;

        EXPECT_EQ(pc.retire(live), expect_dead) << "round " << round;
        EXPECT_EQ(pc.size(), plans.size() - expect_dead);
        for (const TranspilePlan &p : plans) {
            const bool resident = pc.lookup(p.key) != nullptr;
            EXPECT_EQ(resident, alive(p)) << "round " << round;
        }
        EXPECT_EQ(pc.stats().retired, expect_dead);
        // Retiring against the same live set again is a no-op.
        EXPECT_EQ(pc.retire(live), 0u);
    }
}

TEST_F(PlanTest, RecalibrationEvictsOnlyTheBumpedDevicesPlans)
{
    CompileService off(tinyServiceOptions(false));
    CompileService on(tinyServiceOptions(true));
    off.start({quadSpec(41), quadSpec(42)});
    on.start({quadSpec(41), quadSpec(42)});

    // Seed one plan per device (same shape, distinct epoch vectors).
    for (int dev = 0; dev < 2; ++dev) {
        const CompileRequest req(10 + static_cast<uint64_t>(dev), dev,
                                 "ansatz", ansatzCircuit(3, 0.7));
        ASSERT_EQ(on.compileSync(req).status, CompileStatus::Ok);
        ASSERT_EQ(off.compileSync(req).status, CompileStatus::Ok);
    }
    ASSERT_EQ(on.driver().planCache().size(), 2u);

    // Retune device 0's edge identically on both services (their
    // deterministic calibration published identical bases, so the
    // drifted parameters coincide too).
    const DriftModel model{1e-4, 5e-3};
    RecalibEdgeRequest retune;
    retune.device_id = 0;
    retune.edge_id = 0;
    retune.cycle = 1;
    retune.params = driftParamsAt(
        on.driver().device(0).device.edgeParams(0), model, 55, 0, 1);
    on.recalibrate({retune});
    off.recalibrate({retune});
    on.drainRecalibration();
    off.drainRecalibration();

    // The sweep drops exactly device 0's plan.
    on.driver().retireCache();
    EXPECT_EQ(on.driver().planCache().stats().retired, 1u);
    EXPECT_EQ(on.driver().planCache().size(), 1u);

    // Device 1's plan survived and still serves exact repeats.
    const CompileRequest repeat1(20, 1, "ansatz",
                                 ansatzCircuit(3, 0.7));
    const CompileResponse r1 = on.compileSync(repeat1);
    ASSERT_EQ(r1.status, CompileStatus::Ok) << r1.error;
    EXPECT_EQ(r1.plan_path, PlanServePath::Memo);

    // Device 0's swept plan is never served: the request runs the
    // full pipeline at the new epoch, bit-identical to plan-off.
    const CompileRequest repeat0(21, 0, "ansatz",
                                 ansatzCircuit(3, 0.7));
    const CompileResponse r0_on = on.compileSync(repeat0);
    const CompileResponse r0_off = off.compileSync(repeat0);
    ASSERT_EQ(r0_on.status, CompileStatus::Ok) << r0_on.error;
    EXPECT_EQ(r0_on.plan_path, PlanServePath::None);
    EXPECT_EQ(r0_on.basis_epoch, on.basisEpoch(0));
    EXPECT_EQ(compileResponseDigest(r0_on),
              compileResponseDigest(r0_off));

    // The fresh compile re-seeded the plan tier at the new epoch.
    // Same request id: the memo-served digest must be bit-identical
    // to the pipeline-served one (the digest mixes request_id).
    const CompileResponse r0_again = on.compileSync(repeat0);
    EXPECT_EQ(r0_again.plan_path, PlanServePath::Memo);
    EXPECT_EQ(compileResponseDigest(r0_again),
              compileResponseDigest(r0_on));

    on.stop();
    off.stop();
}

// --- Snapshot persistence of the plans section ----------------------

TEST_F(PlanTest, SnapshotRoundTripsPlansByteIdentically)
{
    std::vector<TranspilePlan> plans;
    plans.push_back(syntheticPlan(900, {{0, 3}}));
    plans.push_back(syntheticPlan(901, {{0, 3}, {1, 2}}));
    plans.push_back(syntheticPlan(902, {{2, 7}}));

    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot({}, plans);
    std::vector<CacheSnapshotEntry> out_entries;
    std::vector<TranspilePlan> out_plans;
    const CacheIoResult r = decodeCacheSnapshot(
        bytes.data(), bytes.size(), &out_entries, &out_plans);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_TRUE(out_entries.empty());
    ASSERT_EQ(out_plans.size(), plans.size());

    // Decoded plans are field-identical (keys are sorted, and the
    // inputs above are already in key order).
    for (size_t i = 0; i < plans.size(); ++i) {
        EXPECT_EQ(out_plans[i].key, plans[i].key);
        EXPECT_EQ(out_plans[i].num_physical, plans[i].num_physical);
        EXPECT_EQ(out_plans[i].initial_layout,
                  plans[i].initial_layout);
        EXPECT_EQ(out_plans[i].final_layout, plans[i].final_layout);
        EXPECT_EQ(out_plans[i].swaps_inserted,
                  plans[i].swaps_inserted);
        EXPECT_EQ(out_plans[i].ops, plans[i].ops);
        ASSERT_EQ(out_plans[i].class_keys.size(),
                  plans[i].class_keys.size());
    }

    // snapshot -> restore -> snapshot reproduces the exact bytes.
    const std::vector<uint8_t> bytes2 =
        encodeCacheSnapshot(std::move(out_entries),
                            std::move(out_plans));
    EXPECT_EQ(bytes2, bytes);
}

TEST_F(PlanTest, PlanCacheSaveLoadMergesThroughTheSnapshotFile)
{
    PlanCache pc;
    pc.store(syntheticPlan(900, {{0, 3}}));
    pc.store(syntheticPlan(901, {{1, 2}}));

    const std::string path =
        ::testing::TempDir() + "qbasis_plan_snapshot.qbwc";
    SharedDecompositionCache cache(2);
    ASSERT_TRUE(saveCacheSnapshot(cache, pc, path).ok());

    SharedDecompositionCache cache2(2);
    PlanCache pc2;
    // Pre-seed the destination with a conflicting resident plan:
    // resident wins the merge, mirroring the class-entry rule.
    TranspilePlan resident = syntheticPlan(900, {{0, 3}});
    resident.swaps_inserted = 99;
    pc2.store(resident);

    const CacheIoResult r = loadCacheSnapshot(path, cache2, &pc2);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_EQ(pc2.size(), 2u);
    EXPECT_EQ(pc2.stats().loaded, 1u); // only the absent plan merged
    const auto kept = pc2.lookup(resident.key);
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->swaps_inserted, 99u);
    std::remove(path.c_str());
}

TEST_F(PlanTest, CorruptPlansSectionAndOldVersionsAreRejected)
{
    std::vector<TranspilePlan> plans;
    plans.push_back(syntheticPlan(900, {{0, 3}}));
    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot({}, plans);

    {
        // Flip one byte inside the plans section (it is the last
        // section of the file): its CRC must reject the load.
        std::vector<uint8_t> bad = bytes;
        bad.back() ^= 0x10u;
        std::vector<TranspilePlan> out;
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr,
                                      &out)
                      .status,
                  CacheIoStatus::ChecksumMismatch);
        EXPECT_TRUE(out.empty());
    }
    {
        // A v2 snapshot (no plans section) is rejected outright --
        // forge the version field; it is checked before the header
        // CRC, so no reseal is needed.
        std::vector<uint8_t> bad = bytes;
        bad[8] = 2;
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr,
                                      nullptr)
                      .status,
                  CacheIoStatus::VersionMismatch);
    }
}

} // namespace
} // namespace qbasis
