/**
 * @file
 * Tests for the benchmark generators: QFT vs the DFT matrix, the QFT
 * adder and Cuccaro adder arithmetic (exhaustive on small operands),
 * BV output states, QAOA structure, random graphs.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/bv.hpp"
#include "apps/cuccaro.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "circuit/statevector.hpp"
#include "circuit/unitary.hpp"

namespace qbasis {
namespace {

TEST(Qft, MatchesDftMatrix)
{
    // QFT (with reversal swaps) maps |k> to the Fourier state with
    // amplitudes exp(2 pi i j k / N) / sqrt(N).
    for (int n : {1, 2, 3, 4}) {
        const Circuit c = qftCircuit(n, true);
        const CMat u = circuitUnitary(c);
        const size_t dim = size_t{1} << n;
        const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
        for (size_t j = 0; j < dim; ++j)
            for (size_t k = 0; k < dim; ++k) {
                const double phase = kTwoPi
                                     * static_cast<double>(j * k)
                                     / static_cast<double>(dim);
                const Complex expect =
                    norm * std::exp(Complex(0.0, phase));
                EXPECT_NEAR(std::abs(u(j, k) - expect), 0.0, 1e-9)
                    << "n=" << n << " j=" << j << " k=" << k;
            }
    }
}

TEST(Qft, InverseUndoesForward)
{
    const int n = 4;
    Circuit c = qftCircuit(n);
    c.extend(inverseQftCircuit(n));
    Circuit id(n);
    id.rz(0, 0.0);
    EXPECT_TRUE(circuitsEquivalent(c, id));
}

TEST(Qft, GateCounts)
{
    // n-qubit QFT: n H gates, n(n-1)/2 controlled phases,
    // floor(n/2) swaps.
    const int n = 6;
    const Circuit c = qftCircuit(n, true);
    EXPECT_EQ(c.count(GateKind::H), static_cast<size_t>(n));
    EXPECT_EQ(c.count(GateKind::CPhase),
              static_cast<size_t>(n * (n - 1) / 2));
    EXPECT_EQ(c.count(GateKind::Swap), static_cast<size_t>(n / 2));
}

TEST(QftAdder, AddsExhaustively)
{
    // 2-bit and 3-bit operands, all input pairs.
    for (int bits : {2, 3}) {
        const Circuit adder = qftAdderCircuit(bits);
        const int n = bits;
        const size_t mod = size_t{1} << n;
        for (size_t a = 0; a < mod; ++a) {
            for (size_t b = 0; b < mod; ++b) {
                Statevector sv(2 * n);
                sv.setBasisState(a | (b << n));
                sv.applyCircuit(adder);
                const size_t expect_b = (a + b) % mod;
                const size_t expect_state = a | (expect_b << n);
                EXPECT_NEAR(sv.probability(expect_state), 1.0, 1e-8)
                    << "bits=" << bits << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(Toffoli, DecompositionIsExact)
{
    Circuit c(3);
    appendToffoli(c, 0, 1, 2);
    for (size_t in = 0; in < 8; ++in) {
        Statevector sv(3);
        sv.setBasisState(in);
        sv.applyCircuit(c);
        size_t expect = in;
        if ((in & 1) && (in & 2))
            expect ^= 4;
        EXPECT_NEAR(sv.probability(expect), 1.0, 1e-10) << in;
    }
}

TEST(Cuccaro, AddsExhaustively)
{
    // n = 2 bits: 6 qubits; check all 16 (a, b) pairs including the
    // carry-out.
    const int n = 2;
    const Circuit adder = cuccaroAdderCircuit(n);
    const size_t mod = size_t{1} << n;
    for (size_t a = 0; a < mod; ++a) {
        for (size_t b = 0; b < mod; ++b) {
            Statevector sv(2 * n + 2);
            // Layout: [carry_in][a bits at 1..n][b bits at n+1..2n]
            // [carry_out at 2n+1].
            size_t state = 0;
            for (int i = 0; i < n; ++i) {
                if (a & (size_t{1} << i))
                    state |= size_t{1} << (1 + i);
                if (b & (size_t{1} << i))
                    state |= size_t{1} << (1 + n + i);
            }
            sv.applyCircuit(adder);
            // Build the expected output state.
            Statevector sv2(2 * n + 2);
            sv2.setBasisState(state);
            sv2.applyCircuit(adder);
            const size_t sum = a + b;
            size_t expect = 0;
            for (int i = 0; i < n; ++i) {
                if (a & (size_t{1} << i))
                    expect |= size_t{1} << (1 + i);
                if (sum & (size_t{1} << i))
                    expect |= size_t{1} << (1 + n + i);
            }
            if (sum >> n)
                expect |= size_t{1} << (2 * n + 1);
            EXPECT_NEAR(sv2.probability(expect), 1.0, 1e-8)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Cuccaro, ThreeBitSpotChecks)
{
    const int n = 3;
    const Circuit adder = cuccaroAdderCircuit(n);
    const size_t pairs[][2] = {{5, 6}, {7, 7}, {0, 3}, {4, 4}};
    for (const auto &p : pairs) {
        const size_t a = p[0], b = p[1];
        size_t state = 0;
        for (int i = 0; i < n; ++i) {
            if (a & (size_t{1} << i))
                state |= size_t{1} << (1 + i);
            if (b & (size_t{1} << i))
                state |= size_t{1} << (1 + n + i);
        }
        Statevector sv(2 * n + 2);
        sv.setBasisState(state);
        sv.applyCircuit(adder);
        const size_t sum = a + b;
        size_t expect = 0;
        for (int i = 0; i < n; ++i) {
            if (a & (size_t{1} << i))
                expect |= size_t{1} << (1 + i);
            if (sum & (size_t{1} << i))
                expect |= size_t{1} << (1 + n + i);
        }
        if (sum >> n)
            expect |= size_t{1} << (2 * n + 1);
        EXPECT_NEAR(sv.probability(expect), 1.0, 1e-8)
            << "a=" << a << " b=" << b;
    }
}

TEST(Cuccaro, TotalQubitSizing)
{
    EXPECT_EQ(cuccaroAdderByTotalQubits(10).numQubits(), 10);
    EXPECT_EQ(cuccaroAdderByTotalQubits(20).numQubits(), 20);
    EXPECT_THROW(cuccaroAdderByTotalQubits(7), std::runtime_error);
}

TEST(Bv, RecoversSecret)
{
    const std::vector<bool> secret{true, false, true, true};
    const Circuit c = bvCircuit(5, secret);
    Statevector sv(5);
    sv.applyCircuit(c);
    // Data register should be exactly the secret (ancilla back to 0).
    size_t expect = 0;
    for (size_t i = 0; i < secret.size(); ++i)
        if (secret[i])
            expect |= size_t{1} << i;
    EXPECT_NEAR(sv.probability(expect), 1.0, 1e-10);
}

TEST(Bv, AllOnesGateCount)
{
    const Circuit c = bvAllOnesCircuit(9);
    EXPECT_EQ(c.count(GateKind::CX), 8u);
    EXPECT_EQ(c.numQubits(), 9);
}

TEST(Qaoa, StructureAndDeterminism)
{
    const Circuit a = qaoaErdosRenyiCircuit(10, 0.33);
    const Circuit b = qaoaErdosRenyiCircuit(10, 0.33);
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.count(GateKind::RZZ), b.count(GateKind::RZZ));
    // p = 1: one H and one RX per qubit.
    EXPECT_EQ(a.count(GateKind::H), 10u);
    EXPECT_EQ(a.count(GateKind::RX), 10u);
    // Edge count should be near p * C(10, 2) = 0.33 * 45 ~ 15.
    EXPECT_GT(a.count(GateKind::RZZ), 5u);
    EXPECT_LT(a.count(GateKind::RZZ), 30u);
}

TEST(Qaoa, RoundsMultiplyLayers)
{
    QaoaParams params;
    params.rounds = 3;
    const auto edges = erdosRenyiGraph(8, 0.3, 42);
    const Circuit c = qaoaCircuit(8, edges, params);
    EXPECT_EQ(c.count(GateKind::RZZ), 3 * edges.size());
    EXPECT_EQ(c.count(GateKind::RX), 24u);
}

TEST(Graphs, EdgeProbabilityConverges)
{
    const auto edges = erdosRenyiGraph(60, 0.1, 7);
    const double expected = 0.1 * 60 * 59 / 2;
    EXPECT_NEAR(static_cast<double>(edges.size()), expected,
                3.0 * std::sqrt(expected));
    for (const auto &[u, v] : edges) {
        EXPECT_LT(u, v);
        EXPECT_GE(u, 0);
        EXPECT_LT(v, 60);
    }
}

TEST(Graphs, DeterministicPerSeed)
{
    EXPECT_EQ(erdosRenyiGraph(20, 0.3, 5), erdosRenyiGraph(20, 0.3, 5));
    EXPECT_NE(erdosRenyiGraph(20, 0.3, 5).size()
                  + erdosRenyiGraph(20, 0.3, 6).size(),
              2 * erdosRenyiGraph(20, 0.3, 5).size());
}

} // namespace
} // namespace qbasis
