/**
 * @file
 * Topology tests: node/edge-count formulas and connectivity of the
 * grid and heavy-hex coupling maps, bipartite frequency groups of
 * topology-aware GridDevice instances, and a routing smoke proving
 * SABRE emits only coupled 2Q ops on a 115-qubit heavy-hex lattice.
 */

#include <gtest/gtest.h>

#include "apps/qft.hpp"
#include "apps/workloads.hpp"
#include "circuit/coupling.hpp"
#include "sim/device.hpp"
#include "transpile/layout.hpp"
#include "transpile/routing.hpp"

namespace qbasis {
namespace {

/** Bridge-qubit count of CouplingMap::heavyHex(rows, cols). */
int
heavyHexBridges(int rows, int cols)
{
    const int row_len = 2 * cols + 1;
    int bridges = 0;
    for (int r = 0; r < rows; ++r) {
        const int offset = (r % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_len; c += 4)
            ++bridges;
    }
    return bridges;
}

TEST(Topology, GridCountFormulas)
{
    for (const auto [rows, cols] :
         {std::pair{1, 2}, {3, 4}, {10, 10}}) {
        const CouplingMap cm = CouplingMap::grid(rows, cols);
        EXPECT_EQ(cm.numQubits(), rows * cols);
        EXPECT_EQ(static_cast<int>(cm.edges().size()),
                  rows * (cols - 1) + (rows - 1) * cols);
        EXPECT_TRUE(cm.isConnected());
    }
}

TEST(Topology, HeavyHexCountFormulas)
{
    for (const auto [rows, cols] :
         {std::pair{1, 1}, {2, 2}, {2, 4}, {3, 6}, {4, 9}}) {
        const CouplingMap cm = CouplingMap::heavyHex(rows, cols);
        const int row_len = 2 * cols + 1;
        const int bridges = heavyHexBridges(rows, cols);
        // Row qubits in (rows + 1) chains plus one qubit per bridge.
        EXPECT_EQ(cm.numQubits(), (rows + 1) * row_len + bridges);
        // Chain edges plus two edges per bridge qubit.
        EXPECT_EQ(static_cast<int>(cm.edges().size()),
                  (rows + 1) * (row_len - 1) + 2 * bridges);
        EXPECT_TRUE(cm.isConnected());
    }
}

TEST(Topology, HeavyHex115QubitLattice)
{
    // The bench_scale determinism lattice: 4x9 cells = 115 qubits.
    const CouplingMap cm = CouplingMap::heavyHex(4, 9);
    EXPECT_EQ(cm.numQubits(), 115);
    EXPECT_EQ(cm.edges().size(), 130u);
    EXPECT_TRUE(cm.isConnected());
    // Heavy-hex keeps degree <= 3 everywhere.
    for (int q = 0; q < cm.numQubits(); ++q)
        EXPECT_LE(cm.neighbors(q).size(), 3u);
}

TEST(Topology, HeavyHexIsBipartite)
{
    // BFS parity is a proper 2-coloring: every edge couples qubits
    // of different parity (the frequency-group invariant).
    const CouplingMap cm = CouplingMap::heavyHex(3, 3);
    for (const auto &[lo, hi] : cm.edges())
        EXPECT_NE(cm.distance(0, lo) % 2, cm.distance(0, hi) % 2);
}

TEST(Topology, HeavyHexDeviceFrequencyGroups)
{
    GridDeviceParams params;
    params.topology = DeviceTopology::HeavyHex;
    params.rows = 2;
    params.cols = 3;
    const GridDevice device(params);
    EXPECT_EQ(device.coupling().numQubits(), device.numQubits());
    // Every edge couples a low- and a high-frequency qubit, exactly
    // as on the grid checkerboard.
    for (const auto &[lo, hi] : device.coupling().edges())
        EXPECT_NE(device.isHighFrequency(lo),
                  device.isHighFrequency(hi));
}

TEST(Topology, GridDeviceUnchangedByTopologyField)
{
    // The topology field must not perturb existing grid devices:
    // default-constructed params and explicit Grid params sample
    // byte-identical frequencies (committed BENCH digests depend on
    // this).
    GridDeviceParams a;
    a.rows = 3;
    a.cols = 3;
    GridDeviceParams b = a;
    b.topology = DeviceTopology::Grid;
    const GridDevice da(a);
    const GridDevice db(b);
    for (int q = 0; q < da.numQubits(); ++q)
        EXPECT_EQ(da.qubitFrequency(q), db.qubitFrequency(q));
}

TEST(Topology, SabreRoutesOnHeavyHex115)
{
    // Routing smoke at realistic fan-out: a dense logical circuit
    // placed and routed on the 115-qubit heavy-hex lattice must emit
    // 2Q ops only on coupled pairs.
    const CouplingMap cm = CouplingMap::heavyHex(4, 9);
    const Circuit logical = qftCircuit(16);
    const std::vector<int> layout = sabreLayout(logical, cm, 1);
    const RoutedCircuit routed = sabreRoute(logical, cm, layout);
    EXPECT_EQ(routed.circuit.numQubits(), cm.numQubits());
    size_t two_q = 0;
    for (const Gate &g : routed.circuit.gates()) {
        if (g.qubits.size() != 2)
            continue;
        ++two_q;
        EXPECT_TRUE(cm.connected(g.qubits[0], g.qubits[1]))
            << "uncoupled 2Q op on (" << g.qubits[0] << ", "
            << g.qubits[1] << ")";
    }
    // All logical 2Q gates survive routing, plus inserted SWAPs.
    EXPECT_EQ(two_q,
              logical.countTwoQubit() + routed.swaps_inserted);
    // QFT-16 is denser than the lattice: routing must insert SWAPs.
    EXPECT_GT(routed.swaps_inserted, 0u);
}

TEST(Topology, WorkloadZooRoutesOnHeavyHex)
{
    // Zoo circuits at lattice scale stay routable: a full-width
    // trotterized Ising chain on the 115-qubit lattice.
    const CouplingMap cm = CouplingMap::heavyHex(4, 9);
    WorkloadParams wp;
    wp.qubits = cm.numQubits();
    const Circuit logical = trotterIsingCircuit(wp);
    const std::vector<int> layout = sabreLayout(logical, cm, 1);
    const RoutedCircuit routed = sabreRoute(logical, cm, layout);
    for (const Gate &g : routed.circuit.gates())
        if (g.qubits.size() == 2)
            ASSERT_TRUE(cm.connected(g.qubits[0], g.qubits[1]));
}

} // namespace
} // namespace qbasis
