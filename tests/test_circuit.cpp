/**
 * @file
 * Tests for the circuit IR: gates, builders, depth, scheduling, the
 * statevector simulator, and circuit unitary equivalence helpers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/schedule.hpp"
#include "circuit/statevector.hpp"
#include "circuit/unitary.hpp"
#include "linalg/random.hpp"
#include "linalg/su2.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

TEST(Gate, MatricesMatchWeylLibrary)
{
    EXPECT_LT(makeGate2(GateKind::CX, 0, 1).matrix4().maxAbsDiff(
                  cnotGate()),
              1e-15);
    EXPECT_LT(makeGate2(GateKind::Swap, 0, 1).matrix4().maxAbsDiff(
                  swapGate()),
              1e-15);
    EXPECT_LT(makeGate2(GateKind::CPhase, 0, 1, {0.7})
                  .matrix4()
                  .maxAbsDiff(cphaseGate(0.7)),
              1e-15);
    EXPECT_LT(makeGate1(GateKind::H, 0).matrix2().maxAbsDiff(
                  hadamard()),
              1e-15);
}

TEST(Gate, TwoQubitNeedsDistinctQubits)
{
    EXPECT_THROW(makeGate2(GateKind::CX, 1, 1), std::runtime_error);
}

TEST(Circuit, AppendValidatesQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::runtime_error);
    EXPECT_THROW(c.cx(0, 5), std::runtime_error);
    c.h(0); // fine
    EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, CountsAndDepth)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.h(2);
    EXPECT_EQ(c.countTwoQubit(), 2u);
    EXPECT_EQ(c.count(GateKind::H), 2u);
    // h(0) | cx(0,1) | cx(1,2) | h(2) -> depth 4
    EXPECT_EQ(c.depth(), 4);

    Circuit par(4);
    par.cx(0, 1);
    par.cx(2, 3);
    EXPECT_EQ(par.depth(), 1);
}

TEST(Schedule, AsapRespectsDependencies)
{
    Circuit c(3);
    c.h(0);        // [0, 20)
    c.cx(0, 1);    // [20, 120)
    c.h(2);        // [0, 20)
    c.cx(1, 2);    // [120, 220)
    const Schedule s =
        scheduleAsap(c, uniformDurations(20.0, 100.0));
    EXPECT_DOUBLE_EQ(s.ops[0].start, 0.0);
    EXPECT_DOUBLE_EQ(s.ops[1].start, 20.0);
    EXPECT_DOUBLE_EQ(s.ops[2].start, 0.0);
    EXPECT_DOUBLE_EQ(s.ops[3].start, 120.0);
    EXPECT_DOUBLE_EQ(s.makespan, 220.0);
    EXPECT_DOUBLE_EQ(s.first_busy[0], 0.0);
    EXPECT_DOUBLE_EQ(s.last_busy[0], 120.0);
    EXPECT_DOUBLE_EQ(s.first_busy[2], 0.0);
    EXPECT_DOUBLE_EQ(s.last_busy[2], 220.0);
}

TEST(Schedule, UntouchedQubitsFlagged)
{
    Circuit c(3);
    c.h(0);
    const Schedule s = scheduleAsap(c, uniformDurations(20.0, 100.0));
    EXPECT_DOUBLE_EQ(s.first_busy[1], -1.0);
    EXPECT_DOUBLE_EQ(s.last_busy[2], -1.0);
}

TEST(Statevector, BellState)
{
    Circuit c(2);
    c.h(1); // qubit 1 = high bit
    c.cx(1, 0);
    Statevector sv(2);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, CnotConvention)
{
    // qubits[0] is the control; set control (qubit 1) to |1>.
    Circuit c(2);
    c.x(1);
    c.cx(1, 0);
    Statevector sv(2);
    sv.applyCircuit(c);
    // Expect |11> : control q1=1 flips target q0.
    EXPECT_NEAR(sv.probability(0b11), 1.0, 1e-12);
}

TEST(Statevector, GateOrderIsProgramOrder)
{
    Circuit c(1);
    c.x(0);
    c.z(0);
    Statevector sv(1);
    sv.applyCircuit(c);
    // Z X |0> = Z|1> = -|1>.
    EXPECT_NEAR(std::abs(sv.amplitude(1) - Complex(-1.0)), 0.0, 1e-12);
}

TEST(Statevector, Apply2QMatchesKron)
{
    Rng rng(1);
    const Mat4 u = randomUnitary4(rng);
    // 3-qubit register, act on (high=2, low=0).
    Statevector sv(3);
    sv.setBasisState(0b101); // q2=1, q0=1
    sv.apply2Q(u, 2, 0);
    // Expected: basis |q2 q0> = |11> = index 3 of the 4x4 input.
    for (int q2 = 0; q2 < 2; ++q2)
        for (int q0 = 0; q0 < 2; ++q0) {
            const size_t idx = (static_cast<size_t>(q2) << 2)
                               | static_cast<size_t>(q0);
            EXPECT_NEAR(std::abs(sv.amplitude(idx)
                                 - u(2 * q2 + q0, 3)),
                        0.0, 1e-12);
        }
}

TEST(Statevector, UnitaryPreservesNorm)
{
    Rng rng(2);
    Circuit c(5);
    for (int i = 0; i < 60; ++i) {
        const int a = static_cast<int>(rng.uniformInt(5));
        int b = static_cast<int>(rng.uniformInt(5));
        while (b == a)
            b = static_cast<int>(rng.uniformInt(5));
        if (rng.uniform() < 0.5)
            c.unitary1q(a, randomSU2(rng));
        else
            c.unitary2q(a, b, randomUnitary4(rng));
    }
    Statevector sv(5);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Unitary, CircuitUnitaryMatchesGateMatrix)
{
    Circuit c(2);
    c.cx(1, 0);
    const CMat u = circuitUnitary(c);
    // With qubit 1 as the high bit, the circuit unitary equals the
    // gate's matrix4 directly.
    const Mat4 expect = cnotGate();
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(std::abs(u(i, j) - expect(i, j)), 0.0, 1e-12);
}

TEST(Unitary, EquivalenceUpToGlobalPhase)
{
    Circuit a(2), b(2);
    a.h(0);
    a.cx(1, 0);
    b.h(0);
    b.cx(1, 0);
    // Add a global phase to b via Z-rotations: RZ(t) = e^{-it/2} P...
    b.rz(0, 0.0);
    EXPECT_TRUE(circuitsEquivalent(a, b));
    b.x(0);
    EXPECT_FALSE(circuitsEquivalent(a, b));
}

TEST(Unitary, EquivalenceUpToPermutation)
{
    // SWAP-terminated circuit: cx(1,0) then swap = relabeled wires.
    Circuit a(2);
    a.cx(1, 0);
    Circuit b(2);
    b.cx(1, 0);
    b.swap(0, 1);
    // After b, logical 0 lives on wire 1 and vice versa.
    EXPECT_TRUE(circuitsEquivalentUpToPermutation(a, b, {1, 0}));
    EXPECT_FALSE(circuitsEquivalentUpToPermutation(a, b, {0, 1}));
}

TEST(Unitary, SwapDecompositionEquivalence)
{
    Circuit a(2);
    a.swap(0, 1);
    Circuit b(2);
    b.cx(0, 1);
    b.cx(1, 0);
    b.cx(0, 1);
    EXPECT_TRUE(circuitsEquivalent(a, b));
}

} // namespace
} // namespace qbasis
