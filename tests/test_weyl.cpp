/**
 * @file
 * Tests for the weyl library: named-gate coordinates, canonicalization
 * (against brute-force symmetry search), the KAK decomposition,
 * invariants, entangling power, perfect entanglers, geometry.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "linalg/su2.hpp"
#include "util/rng.hpp"
#include "weyl/cartan.hpp"
#include "weyl/gates.hpp"
#include "weyl/geometry.hpp"
#include "weyl/invariants.hpp"
#include "weyl/kak.hpp"
#include "weyl/trajectory.hpp"

namespace qbasis {
namespace {

TEST(Gates, AllNamedGatesAreUnitary)
{
    EXPECT_TRUE(cnotGate().isUnitary());
    EXPECT_TRUE(czGate().isUnitary());
    EXPECT_TRUE(swapGate().isUnitary());
    EXPECT_TRUE(iswapGate().isUnitary());
    EXPECT_TRUE(sqrtIswapGate().isUnitary());
    EXPECT_TRUE(sqrtSwapGate().isUnitary());
    EXPECT_TRUE(sqrtSwapDagGate().isUnitary());
    EXPECT_TRUE(bGate().isUnitary());
    EXPECT_TRUE(magicBasis().isUnitary());
    EXPECT_TRUE(canonicalGate(0.3, 0.2, 0.1).isUnitary());
}

TEST(Gates, SqrtGatesSquareCorrectly)
{
    EXPECT_LT((sqrtIswapGate() * sqrtIswapGate()).maxAbsDiff(iswapGate()),
              1e-13);
    EXPECT_LT((sqrtSwapGate() * sqrtSwapGate()).maxAbsDiff(swapGate()),
              1e-13);
    EXPECT_LT(
        (sqrtSwapDagGate() * sqrtSwapGate()).maxAbsDiff(Mat4::identity()),
        1e-13);
}

TEST(Gates, CphaseAtPiIsCz)
{
    EXPECT_LT(cphaseGate(kPi).maxAbsDiff(czGate()), 1e-13);
}

TEST(Gates, CanonicalGateSpecialCases)
{
    // CAN(0,0,0) = I
    EXPECT_LT(canonicalGate(0, 0, 0).maxAbsDiff(Mat4::identity()), 1e-13);
    // CAN(1/2,1/2,0) equals iSWAP-dagger up to phase in this
    // convention; iSWAP and its inverse share a Weyl-chamber point.
    EXPECT_NEAR(traceInfidelity(canonicalGate(0.5, 0.5, 0),
                                iswapGate().dagger()),
                0.0, 1e-12);
    // CAN(1/2,1/2,1/2) ~ SWAP up to phase.
    EXPECT_NEAR(
        traceInfidelity(canonicalGate(0.5, 0.5, 0.5), swapGate()), 0.0,
        1e-12);
}

struct NamedGateCase
{
    const char *name;
    Mat4 (*gate)();
    CartanCoords expected;
};

class NamedGateCoords : public ::testing::TestWithParam<NamedGateCase>
{
};

TEST_P(NamedGateCoords, MatchesPaperFigure1)
{
    const auto &p = GetParam();
    const CartanCoords c = cartanCoords(p.gate());
    EXPECT_LT(c.distance(canonicalize(p.expected)), 1e-7)
        << p.name << " got " << c.str();
}

INSTANTIATE_TEST_SUITE_P(
    Paper, NamedGateCoords,
    ::testing::Values(
        NamedGateCase{"CNOT", cnotGate, {0.5, 0.0, 0.0}},
        NamedGateCase{"CZ", czGate, {0.5, 0.0, 0.0}},
        NamedGateCase{"iSWAP", iswapGate, {0.5, 0.5, 0.0}},
        NamedGateCase{"SWAP", swapGate, {0.5, 0.5, 0.5}},
        NamedGateCase{"sqiSWAP", sqrtIswapGate, {0.25, 0.25, 0.0}},
        NamedGateCase{"sqSWAP", sqrtSwapGate, {0.25, 0.25, 0.25}},
        NamedGateCase{"sqSWAPdag", sqrtSwapDagGate, {0.75, 0.25, 0.25}},
        NamedGateCase{"B", bGate, {0.5, 0.25, 0.0}}),
    [](const ::testing::TestParamInfo<NamedGateCase> &info) {
        return info.param.name;
    });

TEST(Cartan, SqrtSwapDagIsItsOwnChamberPoint)
{
    // sqrt(SWAP) and sqrt(SWAP)^dag are distinct local classes; both
    // (1/4,1/4,1/4) and (3/4,1/4,1/4) are canonical points (the PE
    // polyhedron of Fig. 1 lists them as separate vertices).
    const CartanCoords c = canonicalize(coords::sqrtSwapDag());
    EXPECT_LT(c.distance(coords::sqrtSwapDag()), 1e-12);
    EXPECT_TRUE(inCanonicalChamber(coords::sqrtSwapDag()));
    EXPECT_GT(c.distance(coords::sqrtSwap()), 0.1);
}

TEST(Cartan, CanonicalizeIdempotent)
{
    Rng rng(1000);
    for (int i = 0; i < 500; ++i) {
        const CartanCoords raw{rng.uniform(-3, 3), rng.uniform(-3, 3),
                               rng.uniform(-3, 3)};
        const CartanCoords c1 = canonicalize(raw);
        const CartanCoords c2 = canonicalize(c1);
        EXPECT_LT(c1.distance(c2), 1e-9);
        EXPECT_TRUE(inCanonicalChamber(c1)) << c1.str();
    }
}

// Brute-force canonicalization: enumerate group elements (permutations
// x pairwise sign flips x integer shifts) and pick the image inside
// the canonical cell.
CartanCoords
bruteForceCanonicalize(const CartanCoords &t)
{
    static const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                    {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    static const int flips[4][3] = {
        {1, 1, 1}, {-1, -1, 1}, {-1, 1, -1}, {1, -1, -1}};
    const double v[3] = {t.tx, t.ty, t.tz};
    CartanCoords best{1e9, 1e9, 1e9};
    bool found = false;
    for (const auto &perm : perms) {
        for (const auto &flip : flips) {
            double w[3];
            for (int i = 0; i < 3; ++i) {
                w[i] = flip[i] * v[perm[i]];
                w[i] -= std::floor(w[i]);
                if (w[i] >= 1.0 - 1e-10)
                    w[i] = 0.0;
            }
            // Also allow the bottom mirror on candidates with tz ~ 0.
            for (int mirror = 0; mirror < 2; ++mirror) {
                double u[3] = {w[0], w[1], w[2]};
                std::sort(u, u + 3, std::greater<double>());
                if (mirror == 1) {
                    if (u[2] > 1e-9)
                        continue;
                    u[0] = 1.0 - u[0];
                    if (u[0] >= 1.0 - 1e-10)
                        u[0] = 0.0;
                    std::sort(u, u + 3, std::greater<double>());
                }
                const CartanCoords cand{u[0], u[1], u[2]};
                if (inCanonicalChamber(cand, 1e-9)) {
                    if (!found
                        || cand.tx < best.tx - 1e-12
                        || (std::abs(cand.tx - best.tx) < 1e-12
                            && cand.ty < best.ty - 1e-12)
                        || (std::abs(cand.tx - best.tx) < 1e-12
                            && std::abs(cand.ty - best.ty) < 1e-12
                            && cand.tz < best.tz)) {
                        best = cand;
                        found = true;
                    }
                }
            }
        }
    }
    EXPECT_TRUE(found);
    return best;
}

TEST(Cartan, CanonicalizeMatchesBruteForce)
{
    Rng rng(1001);
    for (int i = 0; i < 300; ++i) {
        const CartanCoords raw{rng.uniform(-2, 2), rng.uniform(-2, 2),
                               rng.uniform(-2, 2)};
        const CartanCoords fast = canonicalize(raw);
        const CartanCoords brute = bruteForceCanonicalize(raw);
        // Both must be in the cell and equivalent; boundary points may
        // differ among equivalent representatives, so compare through
        // the gate invariants.
        const MakhlinInvariants ia = invariantsFromCoords(fast);
        const MakhlinInvariants ib = invariantsFromCoords(brute);
        EXPECT_LT(invariantDistanceSq(ia, ib), 1e-14)
            << "raw " << raw.str() << " fast " << fast.str() << " brute "
            << brute.str();
    }
}

TEST(Cartan, MirrorSymmetryOnBottomPlane)
{
    // (tx, ty, 0) ~ (1-tx, ty, 0)
    const CartanCoords a = canonicalize({0.7, 0.2, 0.0});
    const CartanCoords b = canonicalize({0.3, 0.2, 0.0});
    EXPECT_LT(a.distance(b), 1e-12);
}

TEST(Kak, ReconstructsRandomUnitaries)
{
    Rng rng(1100);
    for (int i = 0; i < 300; ++i) {
        const Mat4 u = randomUnitary4(rng);
        const KakDecomposition kak = kakDecompose(u);
        EXPECT_LT(kak.reconstruct().maxAbsDiff(u), 1e-8);
        EXPECT_TRUE(kak.a1.isUnitary(1e-9));
        EXPECT_TRUE(kak.a0.isUnitary(1e-9));
        EXPECT_TRUE(kak.b1.isUnitary(1e-9));
        EXPECT_TRUE(kak.b0.isUnitary(1e-9));
    }
}

TEST(Kak, ReconstructsNamedGates)
{
    for (const Mat4 &u : {cnotGate(), czGate(), swapGate(), iswapGate(),
                          sqrtIswapGate(), sqrtSwapGate(), bGate(),
                          Mat4::identity(), cphaseGate(0.3),
                          rzzGate(1.1)}) {
        const KakDecomposition kak = kakDecompose(u);
        EXPECT_LT(kak.reconstruct().maxAbsDiff(u), 1e-8);
    }
}

TEST(Kak, LocalGatesHaveZeroCoords)
{
    Rng rng(1101);
    for (int i = 0; i < 100; ++i) {
        const Mat4 u = randomLocal4(rng)
                       * std::exp(Complex(0, rng.uniform(0, kTwoPi)));
        const CartanCoords c = cartanCoords(u);
        EXPECT_LT(c.distance(coords::identity0()), 1e-7) << c.str();
    }
}

TEST(Kak, CoordsInvariantUnderLocals)
{
    Rng rng(1102);
    for (int i = 0; i < 100; ++i) {
        const Mat4 u = randomUnitary4(rng);
        const Mat4 v = randomLocal4(rng) * u * randomLocal4(rng);
        const CartanCoords cu = cartanCoords(u);
        const CartanCoords cv = cartanCoords(v);
        const MakhlinInvariants iu = invariantsFromCoords(cu);
        const MakhlinInvariants iv = invariantsFromCoords(cv);
        EXPECT_LT(invariantDistanceSq(iu, iv), 1e-12)
            << cu.str() << " vs " << cv.str();
    }
}

TEST(Kak, CanonicalGateRoundTrip)
{
    Rng rng(1103);
    for (int i = 0; i < 100; ++i) {
        // Random point in the canonical chamber (rejection sampling).
        CartanCoords t;
        do {
            t = {rng.uniform(0, 1), rng.uniform(0, 0.5),
                 rng.uniform(0, 0.5)};
        } while (!inCanonicalChamber(canonicalize(t))
                 || canonicalize(t).distance(t) > 1e-9);
        const Mat4 g = canonicalGate(t.tx, t.ty, t.tz);
        const CartanCoords c = cartanCoords(g);
        EXPECT_LT(c.distance(t), 1e-7)
            << "in " << t.str() << " out " << c.str();
    }
}

TEST(Invariants, AgreeBetweenMatrixAndCoords)
{
    Rng rng(1200);
    for (int i = 0; i < 100; ++i) {
        const Mat4 u = randomUnitary4(rng);
        const MakhlinInvariants im = makhlinInvariants(u);
        const MakhlinInvariants ic =
            invariantsFromCoords(cartanCoords(u));
        EXPECT_LT(invariantDistanceSq(im, ic), 1e-12);
    }
}

TEST(Invariants, KnownValues)
{
    // Identity: g1 = 1, g2 = 3. CNOT: g1 = 0, g2 = 1.
    // SWAP: g1 = -1, g2 = -3. iSWAP: g1 = 0, g2 = -1.
    const MakhlinInvariants ii = makhlinInvariants(Mat4::identity());
    EXPECT_NEAR(std::abs(ii.g1 - Complex(1.0)), 0.0, 1e-10);
    EXPECT_NEAR(ii.g2, 3.0, 1e-10);

    const MakhlinInvariants ic = makhlinInvariants(cnotGate());
    EXPECT_NEAR(std::abs(ic.g1), 0.0, 1e-10);
    EXPECT_NEAR(ic.g2, 1.0, 1e-10);

    const MakhlinInvariants is = makhlinInvariants(swapGate());
    EXPECT_NEAR(std::abs(is.g1 - Complex(-1.0)), 0.0, 1e-10);
    EXPECT_NEAR(is.g2, -3.0, 1e-10);

    const MakhlinInvariants iw = makhlinInvariants(iswapGate());
    EXPECT_NEAR(std::abs(iw.g1), 0.0, 1e-10);
    EXPECT_NEAR(iw.g2, -1.0, 1e-10);
}

TEST(EntanglingPower, PaperValues)
{
    const double tol = 1e-12;
    EXPECT_NEAR(entanglingPower(coords::cnot()), 2.0 / 9.0, tol);
    EXPECT_NEAR(entanglingPower(coords::iswap()), 2.0 / 9.0, tol);
    EXPECT_NEAR(entanglingPower(coords::bGate()), 2.0 / 9.0, tol);
    EXPECT_NEAR(entanglingPower(coords::sqrtIswap()), 1.0 / 6.0, tol);
    EXPECT_NEAR(entanglingPower(coords::sqrtSwap()), 1.0 / 6.0, tol);
    EXPECT_NEAR(entanglingPower(coords::identity0()), 0.0, tol);
    EXPECT_NEAR(entanglingPower(coords::swap()), 0.0, tol);
}

TEST(EntanglingPower, RangeAndZeros)
{
    Rng rng(1300);
    for (int i = 0; i < 500; ++i) {
        const CartanCoords c = canonicalize({rng.uniform(0, 1),
                                             rng.uniform(0, 1),
                                             rng.uniform(0, 1)});
        const double ep = entanglingPower(c);
        EXPECT_GE(ep, -1e-12);
        EXPECT_LE(ep, 2.0 / 9.0 + 1e-12);
    }
}

TEST(PerfectEntangler, NamedGates)
{
    EXPECT_TRUE(isPerfectEntangler(coords::cnot()));
    EXPECT_TRUE(isPerfectEntangler(coords::iswap()));
    EXPECT_TRUE(isPerfectEntangler(coords::bGate()));
    EXPECT_TRUE(isPerfectEntangler(coords::sqrtIswap()));
    EXPECT_TRUE(isPerfectEntangler(coords::sqrtSwap()));
    EXPECT_FALSE(isPerfectEntangler(coords::identity0()));
    EXPECT_FALSE(isPerfectEntangler(coords::swap()));
    EXPECT_FALSE(isPerfectEntangler(canonicalize({0.9, 0.05, 0.0})));
}

TEST(PerfectEntangler, ImpliesMinimumEntanglingPower)
{
    // PE gates have ep >= 1/6 (paper Section II-C).
    Rng rng(1301);
    for (int i = 0; i < 2000; ++i) {
        const CartanCoords c = canonicalize({rng.uniform(0, 1),
                                             rng.uniform(0, 1),
                                             rng.uniform(0, 1)});
        if (isPerfectEntangler(c))
            EXPECT_GE(entanglingPower(c), 1.0 / 6.0 - 1e-9) << c.str();
    }
}

TEST(PerfectEntangler, VolumeIsHalfOfChamber)
{
    // Monte Carlo over the chamber: PE volume fraction == 1/2.
    Rng rng(1302);
    const Tetrahedron chamber = weylChamberTetrahedron();
    int inside = 0, total = 0;
    while (total < 40000) {
        // Sample inside the bounding box, keep points in the chamber.
        const CartanCoords p{rng.uniform(0, 1), rng.uniform(0, 0.5),
                             rng.uniform(0, 0.5)};
        if (!chamber.contains(p))
            continue;
        ++total;
        inside += isPerfectEntangler(p);
    }
    const double frac = static_cast<double>(inside) / total;
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(Geometry, ChamberVolume)
{
    EXPECT_NEAR(weylChamberTetrahedron().volume(), 1.0 / 24.0, 1e-15);
    EXPECT_NEAR(weylChamberVolume(), 1.0 / 24.0, 1e-15);
}

TEST(Geometry, PointInTetrahedron)
{
    const Tetrahedron t = weylChamberTetrahedron();
    EXPECT_TRUE(t.contains({0.4, 0.3, 0.2}));
    EXPECT_TRUE(t.contains(coords::cnot()));
    EXPECT_TRUE(t.contains(coords::swap())); // vertex
    EXPECT_FALSE(t.contains({0.4, 0.45, 0.2}));
    EXPECT_FALSE(t.contains({-0.1, 0.0, 0.0}));
}

TEST(Geometry, SegmentTriangleIntersection)
{
    const Triangle tri{{CartanCoords{0, 0, 0}, CartanCoords{1, 0, 0},
                        CartanCoords{0, 1, 0}}};
    // Segment crossing the z=0 plane inside the triangle.
    const auto hit = segmentTriangleIntersection({0.2, 0.2, -1.0},
                                                 {0.2, 0.2, 1.0}, tri);
    ASSERT_TRUE(hit.has_value());
    EXPECT_NEAR(*hit, 0.5, 1e-12);
    // Segment missing the triangle.
    const auto miss = segmentTriangleIntersection({0.8, 0.8, -1.0},
                                                  {0.8, 0.8, 1.0}, tri);
    EXPECT_FALSE(miss.has_value());
    // Segment parallel to the plane.
    const auto par = segmentTriangleIntersection({0.2, 0.2, 0.5},
                                                 {0.4, 0.4, 0.5}, tri);
    EXPECT_FALSE(par.has_value());
}

TEST(Geometry, PointSegmentDistance)
{
    const CartanCoords a{0, 0, 0}, b{1, 0, 0};
    EXPECT_NEAR(pointSegmentDistance({0.5, 1.0, 0.0}, a, b), 1.0, 1e-12);
    EXPECT_NEAR(pointSegmentDistance({2.0, 0.0, 0.0}, a, b), 1.0, 1e-12);
    EXPECT_NEAR(pointSegmentDistance({0.3, 0.0, 0.0}, a, b), 0.0, 1e-12);
}

TEST(Trajectory, FirstIndexWhere)
{
    Trajectory tr;
    for (int i = 0; i <= 10; ++i) {
        TrajectoryPoint p;
        p.duration = i;
        p.coords = {0.05 * i, 0.05 * i, 0.0};
        tr.append(p);
    }
    const auto idx = tr.firstIndexWhere([](const TrajectoryPoint &p) {
        return p.coords.tx >= 0.25;
    });
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 5u);
}

TEST(Trajectory, RejectsUnsortedDurations)
{
    Trajectory tr;
    TrajectoryPoint p;
    p.duration = 5.0;
    tr.append(p);
    p.duration = 3.0;
    EXPECT_THROW(tr.append(p), std::runtime_error);
}

TEST(Trajectory, MaxLeakage)
{
    Trajectory tr;
    for (int i = 0; i < 5; ++i) {
        TrajectoryPoint p;
        p.duration = i;
        p.leakage = 0.001 * i;
        tr.append(p);
    }
    EXPECT_NEAR(tr.maxLeakage(), 0.004, 1e-15);
}

} // namespace
} // namespace qbasis
