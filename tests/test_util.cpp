/**
 * @file
 * Tests for the util library: RNG determinism and distributions,
 * statistics, table rendering, logging failure modes.
 */

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace qbasis {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> counts(257);
    for (auto &c : counts)
        c.store(0);
    pool.parallelFor(counts.size(),
                     [&](size_t i) { counts[i].fetch_add(1); });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, NestedSubmissionFromWorkers)
{
    // Tasks submitting tasks (the engine's depth waves do this) must
    // not deadlock, including on a single-thread pool.
    for (int threads : {1, 3}) {
        ThreadPool pool(threads);
        std::atomic<int> done{0};
        pool.parallelFor(8, [&](size_t) {
            pool.submit([&] { done.fetch_add(1); });
        });
        // Drain: the nested tasks have no completion handle, so spin
        // briefly through another barrier.
        while (done.load() < 8)
            pool.parallelFor(1, [](size_t) {});
        EXPECT_EQ(done.load(), 8);
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(4,
                                  [](size_t i) {
                                      if (i == 2)
                                          fatal("boom %zu", i);
                                  }),
                 std::runtime_error);
}

TEST(Rng, DeriveSeedIsDeterministicAndDecorrelated)
{
    // Same inputs -> same stream; nearby stream indices -> unrelated
    // seeds (the property the per-restart synthesis streams rely on).
    EXPECT_EQ(Rng::deriveSeed(7, 3), Rng::deriveSeed(7, 3));
    EXPECT_NE(Rng::deriveSeed(7, 3), Rng::deriveSeed(7, 4));
    EXPECT_NE(Rng::deriveSeed(7, 3), Rng::deriveSeed(8, 3));
    // Consecutive streams should not produce correlated first draws.
    double prev = Rng(Rng::deriveSeed(1234, 0)).uniform();
    int distinct = 0;
    for (uint64_t k = 1; k < 32; ++k) {
        const double cur = Rng(Rng::deriveSeed(1234, k)).uniform();
        if (std::abs(cur - prev) > 1e-6)
            ++distinct;
        prev = cur;
    }
    EXPECT_GE(distinct, 30);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntervalRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShifted)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(5.0, 0.25));
    EXPECT_NEAR(s.mean(), 5.0, 0.01);
    EXPECT_NEAR(s.stddev(), 0.25, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(5);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        counts[rng.uniformInt(8)]++;
    for (int c : counts)
        EXPECT_GT(c, 800);
}

TEST(Rng, UniformIntZeroPanics)
{
    Rng rng(5);
    EXPECT_THROW(rng.uniformInt(0), std::logic_error);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(21);
    std::vector<size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(RunningStats, Basics)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_NEAR(s.stddev(), 1.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, VectorHelpers)
{
    std::vector<double> v{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_DOUBLE_EQ(median(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MedianOdd)
{
    std::vector<double> v{9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(TextTable, RendersAllCells)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"beta", "22"});
    const std::string s = t.render();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TextTable, ArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Format, FixedAndPercent)
{
    EXPECT_EQ(fmtFixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.123456, 3), "12.3%");
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user error %d", 42), std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug %s", "here"), std::logic_error);
}

TEST(Logging, StrformatFormats)
{
    EXPECT_EQ(strformat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
}

} // namespace
} // namespace qbasis
