/**
 * @file
 * Async-recalibration benchmark: drift cycles on a fleet where
 * per-edge retuning either stalls compilation (the synchronous
 * baseline) or overlaps with it (the RecalibScheduler pipeline).
 * Emits BENCH_recalib.json for the CI bench gate
 * (scripts/check_bench.py).
 *
 * The synchronous baseline models the repo's documented pre-subsystem
 * cycle practice (see examples/calibration_cycle.cpp and the
 * FleetDriver::run() docs): every cycle clears the Weyl-class cache
 * ("the cache is rebuilt against the refreshed gate") and all
 * compilation waits behind the retune drain. The async mode never
 * clears -- basis-hash cache keys keep classes of the old and new
 * basis coexisting -- and compiles immediately against each edge's
 * last published basis while the RecalibScheduler's
 * simulate/select/resynthesize pipelines run in the pool's
 * Background lane. The speedup therefore has two sources: avoided
 * resynthesis (only genuinely new bases synthesize classes) and
 * recalibration/compilation overlap (visible in overlap_ratio; on a
 * multi-core runner it also compounds the wall-time win).
 *
 * Determinism gate: the post-cycle report (published calibrations +
 * verification compiles after the drain) must be bit-identical
 * between the synchronous 1-shard run and the fully overlapped
 * N-shard run.
 *
 * Usage: bench_recalib [--quick|--smoke] [--threads N]
 *
 * JSON schema (BENCH_recalib.json):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "fleet": { "devices": int, "edges_per_device": int,
 *              "cycles": int, "recalibrated_edges": int },
 *   "sync":  { "wall_ms": double, "recalib_ms": double,
 *              "compile_ms": double, "compile_stall_ms": double },
 *   "async": { "wall_ms": double, "compile_ms": double,
 *              "compile_stall_ms": double,
 *              "overlap_ratio": double,  // fraction of the serving
 *                                        // window with recalibration
 *                                        // in flight (sync: 0)
 *              "presynth_owned": int, "restarts_pruned": int },
 *   "speedup": double,            // sync.wall / async.wall
 *   "determinism": { "shards_sync": 1, "shards_async": int,
 *                    "results_match": bool }
 * }
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/bv.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "synth/depth_cache.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

/**
 * Exit-code sanity bound on the overlapped compile path's stall
 * time. Deliberately looser than the CI floor: the authoritative
 * gate is max_compile_stall_ms in bench/baselines.json (enforced by
 * scripts/check_bench.py); this constant only catches gross
 * regressions in smoke runs that never reach the gate.
 */
constexpr double kStallSanityCeilingMs = 5.0;

struct BenchConfig
{
    int devices = 4;
    int cycles = 3;
    int edge_limit = -1; ///< Edges simulated by the initial tuneup.
    double recalibrate_fraction = 0.35;
    int threads = 0;
    uint64_t drift_seed = 777;
};

FleetOptions
benchFleetOptions(const BenchConfig &cfg, int shards)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = cfg.threads;
    opts.synth = benchSynth();
    opts.calib.edge_limit = cfg.edge_limit;
    // Bench-scale simulator settings: coarser integration and a
    // shorter drive probe keep the trajectory stage cheap relative
    // to synthesis. Identical in both modes, so the determinism
    // comparison is unaffected.
    opts.calib.sim.dt = 0.01;
    opts.calib.sim.probe_dt = 0.04;
    opts.calib.sim.probe_duration = 60.0;
    opts.calib.sim.drive_scan_points = 7;
    return opts;
}

std::vector<FleetDeviceSpec>
benchFleet(int devices)
{
    std::vector<FleetDeviceSpec> specs;
    specs.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
        FleetDeviceSpec spec;
        spec.grid.rows = 2;
        spec.grid.cols = 2;
        spec.grid.seed = 31 + static_cast<uint64_t>(d);
        spec.xi = 0.04;
        specs.push_back(std::move(spec));
    }
    return specs;
}

/** Deterministic drifted-edge requests of one cycle, fleet-wide. */
std::vector<RecalibEdgeRequest>
cycleRequests(const FleetDriver &driver, const BenchConfig &cfg,
              uint64_t cycle, int *total_requests)
{
    std::vector<RecalibEdgeRequest> requests;
    for (size_t d = 0; d < driver.deviceCount(); ++d) {
        const FleetDeviceState &state =
            driver.device(static_cast<int>(d));
        const int n_edges =
            static_cast<int>(state.device.coupling().edges().size());
        DriftCycleOptions dopts;
        dopts.recalibrate_fraction = cfg.recalibrate_fraction;
        dopts.seed = Rng::deriveSeed(cfg.drift_seed,
                                     static_cast<uint64_t>(d));
        DriftCycle drift(n_edges, dopts);
        DriftCycle::Step step;
        for (uint64_t c = 0; c < cycle; ++c)
            step = drift.advance();
        for (const int e : step.drifted_edges) {
            RecalibEdgeRequest req;
            req.device_id = static_cast<int>(d);
            req.edge_id = e;
            req.cycle = cycle;
            req.params = drift.paramsAt(state.device.edgeParams(e), e,
                                        cycle);
            requests.push_back(std::move(req));
        }
    }
    if (total_requests != nullptr)
        *total_requests += static_cast<int>(requests.size());
    return requests;
}

struct ModeResult
{
    double wall_ms = 0.0;
    double recalib_ms = 0.0;       ///< Sync: serialized retune time.
    double compile_ms = 0.0;
    double compile_stall_ms = 0.0; ///< Time compiles waited on
                                   ///< recalibration state.
    double overlap_ratio = 0.0;    ///< Mean over cycles (async).
    int recalibrated_edges = 0;
    RecalibScheduler::Stats sched;
    SynthEngine::Stats engine;
    RecalibCycleReport post;       ///< Post-drain report, last cycle.
};

/**
 * Run `cycles` drift cycles. `overlap` selects the async mode
 * (compile immediately, drain after); the baseline drains first and
 * clears the class cache per cycle, reproducing the synchronous
 * invalidation flow this subsystem replaces.
 */
ModeResult
runMode(const BenchConfig &cfg, int shards, bool overlap,
        const std::vector<FleetCircuit> &circuits,
        const std::vector<FleetCircuit> &verify)
{
    // Both modes start with a cold process-wide depth-oracle cache:
    // verdicts computed by whichever mode runs first must not
    // subsidize the other side of the speedup comparison.
    DepthOracleCache::shared().clear();
    FleetDriver driver(benchFleetOptions(cfg, shards));
    driver.initDevices(benchFleet(cfg.devices));
    // Warm serving state: a live fleet has compiled its workload
    // before the drift cycle begins (untimed, both modes). The
    // synchronous baseline's per-cycle invalidation discards this
    // warmth -- that is precisely the cost being measured.
    driver.compileCircuits(circuits);

    ModeResult r;
    double overlap_sum = 0.0;
    int overlap_cycles = 0;
    for (int c = 1; c <= cfg.cycles; ++c) {
        const std::vector<RecalibEdgeRequest> requests =
            cycleRequests(driver, cfg, static_cast<uint64_t>(c),
                          &r.recalibrated_edges);
        const double t_cycle = driver.recalibNowMs();
        if (!overlap) {
            // Synchronous baseline: invalidate, retune, stall, then
            // compile.
            driver.cache().clear();
            driver.recalibrate(requests);
            driver.drainRecalibration();
            const double t_drained = driver.recalibNowMs();
            r.recalib_ms += t_drained - t_cycle;
            r.compile_stall_ms += t_drained - t_cycle;
            const FleetCompilePass pass =
                driver.compileCircuits(circuits);
            r.compile_ms += pass.wall_ms;
            r.compile_stall_ms += pass.snapshot_wait_ms;
        } else {
            // Overlapped: schedule, serve immediately, drain last.
            driver.resetRecalibWindow();
            const double s0 = driver.recalibNowMs();
            driver.recalibrate(requests);
            const double c0 = driver.recalibNowMs();
            const FleetCompilePass pass =
                driver.compileCircuits(circuits);
            const double c1 = driver.recalibNowMs();
            r.compile_ms += pass.wall_ms;
            r.compile_stall_ms += pass.snapshot_wait_ms;
            driver.drainRecalibration();
            // Overlap ratio: fraction of the serving window during
            // which recalibration was in flight (scheduled but not
            // yet fully published). The synchronous baseline is 0 by
            // construction -- it drains before serving resumes.
            const RecalibScheduler::Stats st = driver.recalibStats();
            if (c1 > c0 && !requests.empty()) {
                const double recalib_end =
                    std::max(st.window_end_ms, s0);
                const double lo = std::max(s0, c0);
                const double hi = std::min(recalib_end, c1);
                overlap_sum += std::max(0.0, hi - lo) / (c1 - c0);
                ++overlap_cycles;
            }
        }
        r.wall_ms += driver.recalibNowMs() - t_cycle;
    }
    if (overlap_cycles > 0)
        r.overlap_ratio = overlap_sum / overlap_cycles;
    r.sched = driver.recalibStats();
    r.post = driver.cycleReport(static_cast<uint64_t>(cfg.cycles),
                                verify);
    r.engine = driver.engineStats();
    return r;
}

void
writeJson(const char *path, bool quick, bool smoke,
          const BenchConfig &cfg, int edges_per_device,
          const ModeResult &sync, const ModeResult &async_r,
          int shards_async, bool results_match,
          uint64_t restarts_pruned)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_recalib: cannot write %s", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
        "  \"threads\": %d,\n"
        "  \"fleet\": {\n"
        "    \"devices\": %d,\n"
        "    \"edges_per_device\": %d,\n"
        "    \"cycles\": %d,\n"
        "    \"recalibrated_edges\": %d\n  },\n"
        "  \"sync\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"recalib_ms\": %.3f,\n"
        "    \"compile_ms\": %.3f,\n"
        "    \"compile_stall_ms\": %.3f\n  },\n"
        "  \"async\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"compile_ms\": %.3f,\n"
        "    \"compile_stall_ms\": %.3f,\n"
        "    \"overlap_ratio\": %.4f,\n"
        "    \"presynth_owned\": %llu,\n"
        "    \"restarts_pruned\": %llu\n  },\n"
        "  \"speedup\": %.4f,\n"
        "  \"determinism\": {\n"
        "    \"shards_sync\": 1,\n"
        "    \"shards_async\": %d,\n"
        "    \"results_match\": %s\n  }\n}\n",
        quick ? "true" : "false", smoke ? "true" : "false",
        cfg.threads, cfg.devices, edges_per_device, cfg.cycles,
        async_r.recalibrated_edges, sync.wall_ms, sync.recalib_ms,
        sync.compile_ms, sync.compile_stall_ms, async_r.wall_ms,
        async_r.compile_ms, async_r.compile_stall_ms,
        async_r.overlap_ratio,
        static_cast<unsigned long long>(async_r.sched.presynth_owned),
        static_cast<unsigned long long>(restarts_pruned),
        async_r.wall_ms > 0.0 ? sync.wall_ms / async_r.wall_ms : 0.0,
        shards_async, results_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            cfg.threads = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr, "usage: bench_recalib "
                                 "[--quick|--smoke] [--threads N]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_recalib: async per-edge retuning vs the "
                "synchronous cycle ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");

    if (smoke) {
        cfg.devices = 2;
        cfg.cycles = 1;
        cfg.edge_limit = 1;
    } else if (quick) {
        cfg.devices = 4;
        cfg.cycles = 2;
        cfg.edge_limit = 1;
    } else {
        cfg.devices = 4;
        cfg.cycles = 3;
        cfg.edge_limit = -1;
    }

    // Serving workload: distinct CPhase/RZZ angles populate many
    // Weyl classes per basis, which is exactly the resynthesis bill
    // the synchronous per-cycle invalidation pays over and over.
    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft4", qftCircuit(4)});
    circuits.push_back({"bv3", bvAllOnesCircuit(3)});
    for (int k = 0; k < (smoke ? 1 : 4); ++k) {
        QaoaParams qp;
        qp.gamma = 0.3 + 0.2 * k;
        qp.beta = 0.25;
        circuits.push_back(
            {"qaoa4_g" + std::to_string(k),
             qaoaErdosRenyiCircuit(4, 0.5, qp)});
    }
    std::vector<FleetCircuit> verify;
    verify.push_back({"qft3", qftCircuit(3)});

    const int shards_async = cfg.devices;

    std::printf("[sync] %d devices, %d cycle%s, 1 shard...\n",
                cfg.devices, cfg.cycles, cfg.cycles == 1 ? "" : "s");
    const ModeResult sync =
        runMode(cfg, 1, /*overlap=*/false, circuits, verify);

    std::printf("[async] %d devices, %d cycle%s, %d shards...\n",
                cfg.devices, cfg.cycles, cfg.cycles == 1 ? "" : "s",
                shards_async);
    const ModeResult async_r =
        runMode(cfg, shards_async, /*overlap=*/true, circuits, verify);

    const bool results_match =
        recalibReportsBitIdentical(sync.post, async_r.post);
    const double speedup =
        async_r.wall_ms > 0.0 ? sync.wall_ms / async_r.wall_ms : 0.0;

    int edges_per_device = 0;
    {
        // 2x2 grid edge count, for the report.
        const GridDevice probe(benchFleet(1)[0].grid);
        edges_per_device =
            static_cast<int>(probe.coupling().edges().size());
    }

    std::printf("\n%-22s %12s %12s\n", "", "sync", "async");
    std::printf("%-22s %12.1f %12.1f\n", "cycle wall (ms)",
                sync.wall_ms, async_r.wall_ms);
    std::printf("%-22s %12.1f %12.1f\n", "compile (ms)",
                sync.compile_ms, async_r.compile_ms);
    std::printf("%-22s %12.1f %12.3f\n", "compile stall (ms)",
                sync.compile_stall_ms, async_r.compile_stall_ms);
    std::printf("%-22s %12s %12.2f\n", "overlap ratio", "-",
                async_r.overlap_ratio);
    std::printf("speedup (sync/async wall): %.2fx\n", speedup);
    std::printf("recalibrated edges: %d; presynth owned/ready/"
                "pending: %llu/%llu/%llu\n",
                async_r.recalibrated_edges,
                static_cast<unsigned long long>(
                    async_r.sched.presynth_owned),
                static_cast<unsigned long long>(
                    async_r.sched.presynth_ready),
                static_cast<unsigned long long>(
                    async_r.sched.presynth_pending));
    std::printf("determinism (sync@1 vs async@%d shards): %s\n",
                shards_async,
                results_match ? "bit-identical" : "MISMATCH");

    writeJson("BENCH_recalib.json", quick, smoke, cfg,
              edges_per_device, sync, async_r, shards_async,
              results_match, async_r.engine.restarts_pruned);

    bool ok = results_match;
    if (async_r.compile_stall_ms > kStallSanityCeilingMs) {
        std::printf("FAIL: async compile path stalled %.3f ms\n",
                    async_r.compile_stall_ms);
        ok = false;
    }
    if (async_r.recalibrated_edges == 0) {
        std::printf("FAIL: no edge recalibrated\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
