/**
 * @file
 * Async-recalibration benchmark: drift cycles on a fleet where
 * per-edge retuning either stalls compilation (the synchronous
 * baseline) or overlaps with it (the RecalibScheduler pipeline).
 * Emits BENCH_recalib.json for the CI bench gate
 * (scripts/check_bench.py).
 *
 * The synchronous baseline models the repo's documented pre-subsystem
 * cycle practice (see examples/calibration_cycle.cpp and the
 * FleetDriver::run() docs): every cycle clears the Weyl-class cache
 * ("the cache is rebuilt against the refreshed gate") and all
 * compilation waits behind the retune drain. The async mode never
 * clears -- basis-hash cache keys keep classes of the old and new
 * basis coexisting -- and compiles immediately against each edge's
 * last published basis while the RecalibScheduler's
 * simulate/select/resynthesize pipelines run in the pool's
 * Background lane. The speedup therefore has two sources: avoided
 * resynthesis (only genuinely new bases synthesize classes) and
 * recalibration/compilation overlap (visible in overlap_ratio; on a
 * multi-core runner it also compounds the wall-time win).
 *
 * Determinism gate: the post-cycle report (published calibrations +
 * verification compiles after the drain) must be bit-identical
 * between the synchronous 1-shard run and the fully overlapped
 * N-shard run.
 *
 * Usage: bench_recalib [--quick|--smoke] [--threads N]
 *                      [--faults [seed]]
 *
 * --faults arms the deterministic fault registry (util/fault) over
 * the recalibration pipelines and runs the overlapped mode twice
 * with the same fault seed. The exit code additionally gates on the
 * degraded-mode contract: both runs must produce bit-identical
 * HealthReports (healthReportDigest) and bit-identical post-cycle
 * reports, and every quarantined edge must have kept serving its
 * last-good basis. A "faults" JSON section reports the degraded-mode
 * overlap ratio and failure-domain counters.
 *
 * JSON schema (BENCH_recalib.json):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "fleet": { "devices": int, "edges_per_device": int,
 *              "cycles": int, "recalibrated_edges": int },
 *   "sync":  { "wall_ms": double, "recalib_ms": double,
 *              "compile_ms": double, "compile_stall_ms": double },
 *   "async": { "wall_ms": double, "compile_ms": double,
 *              "compile_stall_ms": double,
 *              "overlap_ratio": double,  // fraction of the serving
 *                                        // window with recalibration
 *                                        // in flight (sync: 0)
 *              "presynth_owned": int, "restarts_pruned": int },
 *   "speedup": double,            // sync.wall / async.wall
 *   "determinism": { "shards_sync": 1, "shards_async": int,
 *                    "results_match": bool }
 * }
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/bv.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "synth/depth_cache.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

/**
 * Exit-code sanity bound on the overlapped compile path's stall
 * time. Deliberately looser than the CI floor: the authoritative
 * gate is max_compile_stall_ms in bench/baselines.json (enforced by
 * scripts/check_bench.py); this constant only catches gross
 * regressions in smoke runs that never reach the gate.
 */
constexpr double kStallSanityCeilingMs = 5.0;

struct BenchConfig
{
    int devices = 4;
    int cycles = 3;
    int edge_limit = -1; ///< Edges simulated by the initial tuneup.
    double recalibrate_fraction = 0.35;
    int threads = 0;
    uint64_t drift_seed = 777;
};

FleetOptions
benchFleetOptions(const BenchConfig &cfg, int shards)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = cfg.threads;
    opts.synth = benchSynth();
    opts.calib.edge_limit = cfg.edge_limit;
    // Bench-scale simulator settings: coarser integration and a
    // shorter drive probe keep the trajectory stage cheap relative
    // to synthesis. Identical in both modes, so the determinism
    // comparison is unaffected.
    opts.calib.sim.dt = 0.01;
    opts.calib.sim.probe_dt = 0.04;
    opts.calib.sim.probe_duration = 60.0;
    opts.calib.sim.drive_scan_points = 7;
    return opts;
}

std::vector<FleetDeviceSpec>
benchFleet(int devices)
{
    std::vector<FleetDeviceSpec> specs;
    specs.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
        FleetDeviceSpec spec;
        spec.grid.rows = 2;
        spec.grid.cols = 2;
        spec.grid.seed = 31 + static_cast<uint64_t>(d);
        spec.xi = 0.04;
        specs.push_back(std::move(spec));
    }
    return specs;
}

/** Deterministic drifted-edge requests of one cycle, fleet-wide. */
std::vector<RecalibEdgeRequest>
cycleRequests(const FleetDriver &driver, const BenchConfig &cfg,
              uint64_t cycle, int *total_requests)
{
    std::vector<RecalibEdgeRequest> requests;
    for (size_t d = 0; d < driver.deviceCount(); ++d) {
        const FleetDeviceState &state =
            driver.device(static_cast<int>(d));
        const int n_edges =
            static_cast<int>(state.device.coupling().edges().size());
        DriftCycleOptions dopts;
        dopts.recalibrate_fraction = cfg.recalibrate_fraction;
        dopts.seed = Rng::deriveSeed(cfg.drift_seed,
                                     static_cast<uint64_t>(d));
        DriftCycle drift(n_edges, dopts);
        DriftCycle::Step step;
        for (uint64_t c = 0; c < cycle; ++c)
            step = drift.advance();
        for (const int e : step.drifted_edges) {
            RecalibEdgeRequest req;
            req.device_id = static_cast<int>(d);
            req.edge_id = e;
            req.cycle = cycle;
            req.params = drift.paramsAt(state.device.edgeParams(e), e,
                                        cycle);
            requests.push_back(std::move(req));
        }
    }
    if (total_requests != nullptr)
        *total_requests += static_cast<int>(requests.size());
    return requests;
}

struct ModeResult
{
    double wall_ms = 0.0;
    double recalib_ms = 0.0;       ///< Sync: serialized retune time.
    double compile_ms = 0.0;
    double compile_stall_ms = 0.0; ///< Time compiles waited on
                                   ///< recalibration state.
    double overlap_ratio = 0.0;    ///< Mean over cycles (async).
    int recalibrated_edges = 0;
    RecalibScheduler::Stats sched;
    SynthEngine::Stats engine;
    RecalibCycleReport post;       ///< Post-drain report, last cycle.
};

/** Disarms the fault registry on scope exit. */
struct FaultScope
{
    explicit FaultScope(const FaultPlan *plan)
    {
        if (plan != nullptr)
            configureFaults(*plan);
    }
    ~FaultScope() { disableFaults(); }
};

/**
 * Run `cycles` drift cycles. `overlap` selects the async mode
 * (compile immediately, drain after); the baseline drains first and
 * clears the class cache per cycle, reproducing the synchronous
 * invalidation flow this subsystem replaces. A non-null `faults`
 * plan arms the registry for the timed cycles only (initial
 * calibration and the warm compile stay fault-free, like a live
 * fleet that degrades mid-service).
 */
ModeResult
runMode(const BenchConfig &cfg, int shards, bool overlap,
        const std::vector<FleetCircuit> &circuits,
        const std::vector<FleetCircuit> &verify,
        const FaultPlan *faults = nullptr)
{
    // Both modes start with a cold process-wide depth-oracle cache:
    // verdicts computed by whichever mode runs first must not
    // subsidize the other side of the speedup comparison.
    DepthOracleCache::shared().clear();
    FleetDriver driver(benchFleetOptions(cfg, shards));
    driver.initDevices(benchFleet(cfg.devices));
    // Warm serving state: a live fleet has compiled its workload
    // before the drift cycle begins (untimed, both modes). The
    // synchronous baseline's per-cycle invalidation discards this
    // warmth -- that is precisely the cost being measured.
    driver.compileCircuits(circuits);

    const FaultScope fault_scope(faults);
    ModeResult r;
    double overlap_sum = 0.0;
    int overlap_cycles = 0;
    for (int c = 1; c <= cfg.cycles; ++c) {
        const std::vector<RecalibEdgeRequest> requests =
            cycleRequests(driver, cfg, static_cast<uint64_t>(c),
                          &r.recalibrated_edges);
        const double t_cycle = driver.recalibNowMs();
        if (!overlap) {
            // Synchronous baseline: invalidate, retune, stall, then
            // compile.
            driver.cache().clear();
            driver.recalibrate(requests);
            driver.drainRecalibration();
            const double t_drained = driver.recalibNowMs();
            r.recalib_ms += t_drained - t_cycle;
            r.compile_stall_ms += t_drained - t_cycle;
            const FleetCompilePass pass =
                driver.compileCircuits(circuits);
            r.compile_ms += pass.wall_ms;
            r.compile_stall_ms += pass.snapshot_wait_ms;
        } else {
            // Overlapped: schedule, serve immediately, drain last.
            driver.resetRecalibWindow();
            const double s0 = driver.recalibNowMs();
            driver.recalibrate(requests);
            const double c0 = driver.recalibNowMs();
            const FleetCompilePass pass =
                driver.compileCircuits(circuits);
            const double c1 = driver.recalibNowMs();
            r.compile_ms += pass.wall_ms;
            r.compile_stall_ms += pass.snapshot_wait_ms;
            driver.drainRecalibration();
            // Overlap ratio: fraction of the serving window during
            // which recalibration was in flight (scheduled but not
            // yet fully published). The synchronous baseline is 0 by
            // construction -- it drains before serving resumes.
            const RecalibScheduler::Stats st = driver.recalibStats();
            if (c1 > c0 && !requests.empty()) {
                const double recalib_end =
                    std::max(st.window_end_ms, s0);
                const double lo = std::max(s0, c0);
                const double hi = std::min(recalib_end, c1);
                overlap_sum += std::max(0.0, hi - lo) / (c1 - c0);
                ++overlap_cycles;
            }
        }
        r.wall_ms += driver.recalibNowMs() - t_cycle;
    }
    if (overlap_cycles > 0)
        r.overlap_ratio = overlap_sum / overlap_cycles;
    r.sched = driver.recalibStats();
    r.post = driver.cycleReport(static_cast<uint64_t>(cfg.cycles),
                                verify);
    r.engine = driver.engineStats();
    return r;
}

/** Outcome of the --faults replay pair. */
struct FaultBench
{
    FaultPlan plan;
    ModeResult run;           ///< First of the two identical runs.
    uint64_t health_digest = 0;
    bool replay_identical = false;
    bool served_last_good = false;
};

/**
 * Every quarantined edge must still serve a well-formed, last-good
 * basis: paired edge/basis arrays, a positive duration, and a
 * calibration exactly stale_cycles behind the report cycle (i.e. the
 * pre-failure publish, not a torn or empty set).
 */
bool
quarantinedServedLastGood(const RecalibCycleReport &post)
{
    for (const EdgeQuarantine &q : post.health.quarantined) {
        if (q.device_id < 0
            || static_cast<size_t>(q.device_id) >= post.devices.size())
            return false;
        const RecalibDeviceCycle &dev =
            post.devices[static_cast<size_t>(q.device_id)];
        if (dev.bases.size() != dev.edges.size())
            return false;
        bool found = false;
        for (size_t e = 0; e < dev.edges.size(); ++e) {
            if (dev.edges[e].edge_id != q.edge_id)
                continue;
            found = true;
            if (dev.bases[e].duration_ns <= 0.0)
                return false;
            if (dev.edges[e].calibrated_cycle + q.stale_cycles
                != post.cycle)
                return false;
        }
        if (!found)
            return false;
    }
    return true;
}

/**
 * Degraded-mode replay: run the overlapped mode twice under the same
 * fault plan. The contract gated here is the one test_fault proves
 * at unit scale -- same fault seed, same HealthReport, same
 * post-cycle report -- now measured on the bench workload.
 */
FaultBench
runFaulted(const BenchConfig &cfg, int shards,
           const std::vector<FleetCircuit> &circuits,
           const std::vector<FleetCircuit> &verify, uint64_t seed)
{
    FaultBench fb;
    fb.plan.seed = seed;
    fb.plan.probability = 0.5;
    fb.plan.site_filter = "recalib.simulate";
    fb.run = runMode(cfg, shards, /*overlap=*/true, circuits, verify,
                     &fb.plan);
    const ModeResult replay = runMode(cfg, shards, /*overlap=*/true,
                                      circuits, verify, &fb.plan);
    fb.health_digest = healthReportDigest(fb.run.post.health);
    fb.replay_identical =
        healthReportsBitIdentical(fb.run.post.health,
                                  replay.post.health)
        && fb.health_digest == healthReportDigest(replay.post.health)
        && recalibReportsBitIdentical(fb.run.post, replay.post);
    fb.served_last_good = quarantinedServedLastGood(fb.run.post)
                          && quarantinedServedLastGood(replay.post);
    return fb;
}

void
writeJson(const char *path, bool quick, bool smoke,
          const BenchConfig &cfg, int edges_per_device,
          const ModeResult &sync, const ModeResult &async_r,
          int shards_async, bool results_match,
          uint64_t restarts_pruned, const FaultBench *faults)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_recalib: cannot write %s", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
        "  \"threads\": %d,\n"
        "  \"fleet\": {\n"
        "    \"devices\": %d,\n"
        "    \"edges_per_device\": %d,\n"
        "    \"cycles\": %d,\n"
        "    \"recalibrated_edges\": %d\n  },\n"
        "  \"sync\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"recalib_ms\": %.3f,\n"
        "    \"compile_ms\": %.3f,\n"
        "    \"compile_stall_ms\": %.3f\n  },\n"
        "  \"async\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"compile_ms\": %.3f,\n"
        "    \"compile_stall_ms\": %.3f,\n"
        "    \"overlap_ratio\": %.4f,\n"
        "    \"presynth_owned\": %llu,\n"
        "    \"restarts_pruned\": %llu\n  },\n"
        "  \"speedup\": %.4f,\n"
        "  \"determinism\": {\n"
        "    \"shards_sync\": 1,\n"
        "    \"shards_async\": %d,\n"
        "    \"results_match\": %s\n  }",
        quick ? "true" : "false", smoke ? "true" : "false",
        cfg.threads, cfg.devices, edges_per_device, cfg.cycles,
        async_r.recalibrated_edges, sync.wall_ms, sync.recalib_ms,
        sync.compile_ms, sync.compile_stall_ms, async_r.wall_ms,
        async_r.compile_ms, async_r.compile_stall_ms,
        async_r.overlap_ratio,
        static_cast<unsigned long long>(async_r.sched.presynth_owned),
        static_cast<unsigned long long>(restarts_pruned),
        async_r.wall_ms > 0.0 ? sync.wall_ms / async_r.wall_ms : 0.0,
        shards_async, results_match ? "true" : "false");
    if (faults != nullptr) {
        const HealthReport &health = faults->run.post.health;
        std::fprintf(
            f,
            ",\n  \"faults\": {\n"
            "    \"seed\": %llu,\n"
            "    \"probability\": %.2f,\n"
            "    \"site_filter\": \"%s\",\n"
            "    \"degraded_wall_ms\": %.3f,\n"
            "    \"degraded_overlap_ratio\": %.4f,\n"
            "    \"stage_retries\": %llu,\n"
            "    \"contained_errors\": %llu,\n"
            "    \"quarantined_edges\": %zu,\n"
            "    \"quarantine_skipped\": %llu,\n"
            "    \"max_stale_cycles\": %llu,\n"
            "    \"health_digest\": \"%016llx\",\n"
            "    \"replay_identical\": %s,\n"
            "    \"served_last_good\": %s\n  }",
            static_cast<unsigned long long>(faults->plan.seed),
            faults->plan.probability,
            faults->plan.site_filter.c_str(), faults->run.wall_ms,
            faults->run.overlap_ratio,
            static_cast<unsigned long long>(health.stage_retries),
            static_cast<unsigned long long>(health.contained_errors),
            health.quarantined.size(),
            static_cast<unsigned long long>(
                health.quarantine_skipped),
            static_cast<unsigned long long>(health.max_stale_cycles),
            static_cast<unsigned long long>(faults->health_digest),
            faults->replay_identical ? "true" : "false",
            faults->served_last_good ? "true" : "false");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    bool with_faults = false;
    uint64_t fault_seed = 2022;
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            cfg.threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--faults") == 0) {
            with_faults = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                fault_seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: bench_recalib [--quick|--smoke] "
                         "[--threads N] [--faults [seed]]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_recalib: async per-edge retuning vs the "
                "synchronous cycle ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");

    if (smoke) {
        cfg.devices = 2;
        cfg.cycles = 1;
        cfg.edge_limit = 1;
    } else if (quick) {
        cfg.devices = 4;
        cfg.cycles = 2;
        cfg.edge_limit = 1;
    } else {
        cfg.devices = 4;
        cfg.cycles = 3;
        cfg.edge_limit = -1;
    }

    // Serving workload: distinct CPhase/RZZ angles populate many
    // Weyl classes per basis, which is exactly the resynthesis bill
    // the synchronous per-cycle invalidation pays over and over.
    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft4", qftCircuit(4)});
    circuits.push_back({"bv3", bvAllOnesCircuit(3)});
    for (int k = 0; k < (smoke ? 1 : 4); ++k) {
        QaoaParams qp;
        qp.gamma = 0.3 + 0.2 * k;
        qp.beta = 0.25;
        circuits.push_back(
            {"qaoa4_g" + std::to_string(k),
             qaoaErdosRenyiCircuit(4, 0.5, qp)});
    }
    std::vector<FleetCircuit> verify;
    verify.push_back({"qft3", qftCircuit(3)});

    const int shards_async = cfg.devices;

    std::printf("[sync] %d devices, %d cycle%s, 1 shard...\n",
                cfg.devices, cfg.cycles, cfg.cycles == 1 ? "" : "s");
    const ModeResult sync =
        runMode(cfg, 1, /*overlap=*/false, circuits, verify);

    std::printf("[async] %d devices, %d cycle%s, %d shards...\n",
                cfg.devices, cfg.cycles, cfg.cycles == 1 ? "" : "s",
                shards_async);
    const ModeResult async_r =
        runMode(cfg, shards_async, /*overlap=*/true, circuits, verify);

    FaultBench fault_bench;
    if (with_faults) {
        std::printf("[faults] degraded-mode replay pair, fault seed "
                    "%llu, p=%.2f on %s...\n",
                    static_cast<unsigned long long>(fault_seed), 0.5,
                    "recalib.simulate");
        fault_bench = runFaulted(cfg, shards_async, circuits, verify,
                                 fault_seed);
    }

    const bool results_match =
        recalibReportsBitIdentical(sync.post, async_r.post);
    const double speedup =
        async_r.wall_ms > 0.0 ? sync.wall_ms / async_r.wall_ms : 0.0;

    int edges_per_device = 0;
    {
        // 2x2 grid edge count, for the report.
        const GridDevice probe(benchFleet(1)[0].grid);
        edges_per_device =
            static_cast<int>(probe.coupling().edges().size());
    }

    std::printf("\n%-22s %12s %12s\n", "", "sync", "async");
    std::printf("%-22s %12.1f %12.1f\n", "cycle wall (ms)",
                sync.wall_ms, async_r.wall_ms);
    std::printf("%-22s %12.1f %12.1f\n", "compile (ms)",
                sync.compile_ms, async_r.compile_ms);
    std::printf("%-22s %12.1f %12.3f\n", "compile stall (ms)",
                sync.compile_stall_ms, async_r.compile_stall_ms);
    std::printf("%-22s %12s %12.2f\n", "overlap ratio", "-",
                async_r.overlap_ratio);
    std::printf("speedup (sync/async wall): %.2fx\n", speedup);
    std::printf("recalibrated edges: %d; presynth owned/ready/"
                "pending: %llu/%llu/%llu\n",
                async_r.recalibrated_edges,
                static_cast<unsigned long long>(
                    async_r.sched.presynth_owned),
                static_cast<unsigned long long>(
                    async_r.sched.presynth_ready),
                static_cast<unsigned long long>(
                    async_r.sched.presynth_pending));
    std::printf("determinism (sync@1 vs async@%d shards): %s\n",
                shards_async,
                results_match ? "bit-identical" : "MISMATCH");

    if (with_faults) {
        const HealthReport &health = fault_bench.run.post.health;
        std::printf(
            "\n[faults] degraded overlap ratio: %.2f; retries %llu, "
            "contained %llu, quarantined %zu (max stale %llu "
            "cycles)\n",
            fault_bench.run.overlap_ratio,
            static_cast<unsigned long long>(health.stage_retries),
            static_cast<unsigned long long>(health.contained_errors),
            health.quarantined.size(),
            static_cast<unsigned long long>(health.max_stale_cycles));
        std::printf("[faults] replay (same fault seed): %s; "
                    "quarantined edges served last-good basis: %s\n",
                    fault_bench.replay_identical ? "bit-identical"
                                                 : "MISMATCH",
                    fault_bench.served_last_good ? "yes" : "NO");
    }

    writeJson("BENCH_recalib.json", quick, smoke, cfg,
              edges_per_device, sync, async_r, shards_async,
              results_match, async_r.engine.restarts_pruned,
              with_faults ? &fault_bench : nullptr);

    bool ok = results_match;
    if (with_faults
        && !(fault_bench.replay_identical
             && fault_bench.served_last_good)) {
        std::printf("FAIL: degraded-mode contract violated\n");
        ok = false;
    }
    if (async_r.compile_stall_ms > kStallSanityCeilingMs) {
        std::printf("FAIL: async compile path stalled %.3f ms\n",
                    async_r.compile_stall_ms);
        ok = false;
    }
    if (async_r.recalibrated_edges == 0) {
        std::printf("FAIL: no edge recalibrated\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
