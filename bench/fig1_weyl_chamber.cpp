/**
 * @file
 * Reproduces Fig. 1: the Weyl chamber of two-qubit gates.
 *
 * Prints the canonical coordinates, entangling power, and perfect-
 * entangler status of the named gates, and verifies by Monte Carlo
 * that perfect entanglers fill exactly half of the chamber volume
 * (Section II-C).
 */

#include <cstdio>

#include "monodromy/volume.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "weyl/cartan.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

int
main()
{
    std::printf("=== Figure 1: the Weyl chamber of 2Q gates ===\n\n");

    TextTable table({"gate", "coords (tx,ty,tz)", "ep", "PE"});
    struct Entry
    {
        const char *name;
        Mat4 gate;
    };
    const Entry entries[] = {
        {"identity", Mat4::identity()},
        {"CNOT", cnotGate()},
        {"CZ", czGate()},
        {"iSWAP", iswapGate()},
        {"SWAP", swapGate()},
        {"sqrt(iSWAP)", sqrtIswapGate()},
        {"sqrt(SWAP)", sqrtSwapGate()},
        {"sqrt(SWAP)dag", sqrtSwapDagGate()},
        {"B", bGate()},
    };
    for (const Entry &e : entries) {
        const CartanCoords c = cartanCoords(e.gate);
        table.addRow({e.name, c.str(4),
                      fmtFixed(entanglingPower(c), 4),
                      isPerfectEntangler(c) ? "yes" : "no"});
    }
    table.print();

    Rng rng(20220901);
    const double pe_fraction = chamberVolumeFraction(
        [](const CartanCoords &c) { return isPerfectEntangler(c); },
        200000, rng);
    std::printf("\nPerfect-entangler volume fraction (MC, 200k "
                "samples): %.4f   [paper: 0.5]\n", pe_fraction);
    std::printf("Special perfect entanglers (ep = 2/9) lie on the "
                "CNOT-iSWAP segment, e.g. B at %s.\n",
                cartanCoords(bGate()).str(4).c_str());
    return 0;
}
