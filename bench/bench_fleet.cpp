/**
 * @file
 * Fleet-scale benchmark: calibrates, summarizes, and compiles a
 * fleet of simulated devices through the shard-parallel FleetDriver
 * and measures cross-device Weyl-class sharing in the process-wide
 * SharedDecompositionCache. Emits BENCH_fleet.json for the CI bench
 * gate (scripts/check_bench.py).
 *
 * Fleet layout: devices are built in pairs sharing a grid seed, so
 * every fleet of >= 2 devices contains byte-identical replicas whose
 * synthesis work must dedupe across devices (cross_device_hit_rate >
 * 0). The determinism pass re-runs the largest fleet single-sharded
 * and requires bit-identical reports.
 *
 * Usage: bench_fleet [--quick|--smoke] [--threads N]
 *
 * JSON schema (BENCH_fleet.json):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "fleets": { "<devices>": {
 *       "devices": int, "shards": int, "wall_ms": double,
 *       "lookups": int, "classes": int,
 *       "hits": int, "misses": int, "hit_rate": double,
 *       "cross_device_hits": int, "cross_device_hit_rate": double,
 *       "multi_device_classes": int } },
 *   "determinism": { "devices": int, "shards_a": int,
 *                    "shards_b": int, "results_match": bool },
 *   "report_digest": "0x..."
 * }
 *
 * report_digest is the FNV-64 fleetReportDigest() of the largest
 * fleet's sharded report: the simd-determinism CI job diffs it
 * between forced-scalar and auto-dispatch kernel backends.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "linalg/mat4_kernels.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

FleetOptions
benchFleetOptions(int shards, int threads, bool tiny)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    opts.synth = benchSynth();
    // Simulate a subset of edges and replicate (the bench drivers'
    // fast mode); replication also exercises intra-device sharing.
    opts.calib.edge_limit = tiny ? 1 : 2;
    return opts;
}

/**
 * Fleet specs in replicated pairs: devices 2k and 2k+1 share a grid
 * seed (byte-identical hardware), distinct pairs get distinct seeds.
 */
std::vector<FleetDeviceSpec>
pairedFleet(int devices)
{
    std::vector<FleetDeviceSpec> specs;
    specs.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
        FleetDeviceSpec spec;
        spec.grid.rows = 2;
        spec.grid.cols = 2;
        spec.grid.seed = 11 + static_cast<uint64_t>(d / 2);
        spec.xi = 0.04;
        specs.push_back(std::move(spec));
    }
    return specs;
}

struct FleetBenchResult
{
    int devices = 0;
    int shards = 0;
    double wall_ms = 0.0;
    SharedDecompositionCache::Stats cache;

    uint64_t
    lookups() const
    {
        return cache.hits + cache.misses;
    }
};

FleetBenchResult
runFleet(int devices, int shards, int threads, bool tiny,
         const std::vector<FleetCircuit> &circuits,
         FleetReport *report_out = nullptr)
{
    FleetDriver driver(benchFleetOptions(shards, threads, tiny));
    FleetReport report = driver.run(pairedFleet(devices), circuits);
    FleetBenchResult r;
    r.devices = devices;
    r.shards = report.shards;
    r.wall_ms = report.wall_ms;
    r.cache = report.cache;
    if (report_out != nullptr)
        *report_out = std::move(report);
    return r;
}

void
writeJson(const char *path, bool quick, bool smoke, int threads,
          const std::vector<FleetBenchResult> &results,
          int det_devices, int det_shards_a, int det_shards_b,
          bool results_match, uint64_t report_digest)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_fleet: cannot write %s", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
                 "  \"threads\": %d,\n  \"fleets\": {\n",
                 quick ? "true" : "false", smoke ? "true" : "false",
                 threads);
    for (size_t i = 0; i < results.size(); ++i) {
        const FleetBenchResult &r = results[i];
        std::fprintf(
            f,
            "    \"%d\": {\n"
            "      \"devices\": %d,\n"
            "      \"shards\": %d,\n"
            "      \"wall_ms\": %.3f,\n"
            "      \"lookups\": %llu,\n"
            "      \"classes\": %zu,\n"
            "      \"hits\": %llu,\n"
            "      \"misses\": %llu,\n"
            "      \"hit_rate\": %.4f,\n"
            "      \"cross_device_hits\": %llu,\n"
            "      \"cross_device_hit_rate\": %.4f,\n"
            "      \"multi_device_classes\": %zu\n"
            "    }%s\n",
            r.devices, r.devices, r.shards, r.wall_ms,
            static_cast<unsigned long long>(r.lookups()),
            r.cache.classes,
            static_cast<unsigned long long>(r.cache.hits),
            static_cast<unsigned long long>(r.cache.misses),
            r.cache.hitRate(),
            static_cast<unsigned long long>(r.cache.cross_device_hits),
            r.cache.crossDeviceHitRate(), r.cache.multi_device_classes,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  },\n  \"determinism\": {\n"
                 "    \"devices\": %d,\n    \"shards_a\": %d,\n"
                 "    \"shards_b\": %d,\n    \"results_match\": %s\n"
                 "  },\n  \"report_digest\": \"0x%016llx\"\n}\n",
                 det_devices, det_shards_a, det_shards_b,
                 results_match ? "true" : "false",
                 static_cast<unsigned long long>(report_digest));
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else {
            std::fprintf(
                stderr,
                "usage: bench_fleet [--quick|--smoke] [--threads N]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_fleet: multi-device sharding + shared "
                "Weyl-class cache ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");
    std::printf("mat4 backend: %s\n", mat4BackendBanner().c_str());

    // Replicated pairs make every >= 2-device fleet dedupe-eligible;
    // the tiny (smoke/quick) config calibrates one edge per device.
    const bool tiny = quick || smoke;
    std::vector<int> sizes;
    if (smoke)
        sizes = {2};
    else if (quick)
        sizes = {1, 2, 4};
    else
        sizes = {1, 2, 4, 8};

    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft3", qftCircuit(3)});

    // The largest fleet's sharded report doubles as one side of the
    // determinism check, so it is captured instead of re-run.
    std::vector<FleetBenchResult> results;
    FleetReport sharded_report;
    for (const int devices : sizes) {
        std::printf("[fleet] %d device%s...\n", devices,
                    devices == 1 ? "" : "s");
        results.push_back(runFleet(
            devices, devices, threads, tiny, circuits,
            devices == sizes.back() ? &sharded_report : nullptr));
    }

    // Determinism gate: the largest fleet re-run on one shard must
    // reproduce the sharded reports bit-for-bit.
    const int det_devices = sizes.back();
    std::printf("[determinism] %d devices at %d vs 1 shard...\n",
                det_devices, det_devices);
    FleetReport serial_report;
    runFleet(det_devices, 1, threads, tiny, circuits, &serial_report);
    const bool results_match =
        fleetReportsBitIdentical(sharded_report, serial_report);

    std::printf("\n%-8s %7s %9s %9s %9s %10s %11s\n", "devices",
                "shards", "wall(ms)", "classes", "hit rate",
                "x-dev hits", "x-dev rate");
    for (const FleetBenchResult &r : results) {
        std::printf("%-8d %7d %9.1f %9zu %8.1f%% %10llu %10.1f%%\n",
                    r.devices, r.shards, r.wall_ms, r.cache.classes,
                    100.0 * r.cache.hitRate(),
                    static_cast<unsigned long long>(
                        r.cache.cross_device_hits),
                    100.0 * r.cache.crossDeviceHitRate());
    }
    std::printf("determinism (%d devices, %d vs 1 shard): %s\n",
                det_devices, det_devices,
                results_match ? "bit-identical" : "MISMATCH");
    const uint64_t report_digest = fleetReportDigest(sharded_report);
    std::printf("report digest: 0x%016llx\n",
                static_cast<unsigned long long>(report_digest));

    writeJson("BENCH_fleet.json", quick, smoke, threads, results,
              det_devices, det_devices, 1, results_match,
              report_digest);

    bool ok = results_match;
    for (const FleetBenchResult &r : results) {
        if (r.devices >= 2 && r.cache.cross_device_hits == 0) {
            std::printf("FAIL: %d-device fleet shows no cross-device "
                        "sharing\n", r.devices);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
