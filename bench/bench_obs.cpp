/**
 * @file
 * Observability overhead benchmark: the cost of a scoped span with
 * tracing disabled (the zero-perturbation budget: one relaxed atomic
 * load, single-digit ns) and enabled, of a registry counter add and
 * a histogram record, plus an exporter round trip and a traced-vs-
 * untraced digest-neutrality check over a real compile workload.
 * Emits BENCH_obs.json for the CI bench gate (scripts/check_bench.py
 * check_obs).
 *
 * Usage: bench_obs [--quick|--smoke]
 *
 * JSON schema (BENCH_obs.json):
 * {
 *   "quick": bool, "smoke": bool,
 *   "spans": { "disabled_iters": int, "disabled_ns_per_span": double,
 *              "enabled_iters": int, "enabled_ns_per_span": double },
 *   "metrics": { "counter_ns": double, "histogram_record_ns": double },
 *   "export": { "events": int, "valid": bool },
 *   "digests": { "requests": int, "compile_match": bool,
 *                "health_match": bool, "fleet_match": bool }
 * }
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/bv.hpp"
#include "apps/qft.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/compile_service.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Cheap-but-converging synthesis settings (as tests/test_serve). */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

FleetDeviceSpec
quadSpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 2;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

CompileServiceOptions
tinyServiceOptions()
{
    CompileServiceOptions opts;
    opts.fleet.shards = 2;
    opts.fleet.threads = 2;
    opts.fleet.synth = cheapSynth();
    opts.fleet.calib.edge_limit = 1;
    opts.queue_capacity = 64;
    opts.dispatchers = 2;
    opts.max_batch = 4;
    return opts;
}

std::vector<CompileRequest>
requestMix()
{
    std::vector<CompileRequest> reqs;
    uint64_t id = 1;
    for (int d = 0; d < 2; ++d) {
        reqs.emplace_back(id++, d, "qft2", qftCircuit(2));
        reqs.emplace_back(id++, d, "qft3", qftCircuit(3));
        reqs.emplace_back(id++, d, "bv3", bvAllOnesCircuit(3));
    }
    return reqs;
}

// --- Span-cost loops ------------------------------------------------

/** ns per span over `iters` tight-loop scopes (with args, as real
 *  call sites open them). The disabled path must not read a clock,
 *  so the loop itself is the only timing source. */
double
spanLoopNs(int iters)
{
    const double start = nowMs();
    for (int i = 0; i < iters; ++i) {
        QBASIS_TRACE_SCOPE("bench.span", "i",
                           static_cast<uint64_t>(i));
    }
    const double wall = nowMs() - start;
    return wall * 1e6 / static_cast<double>(iters);
}

double
counterLoopNs(int iters)
{
    static Counter &c =
        MetricsRegistry::instance().counter("bench.obs.counter");
    const double start = nowMs();
    for (int i = 0; i < iters; ++i)
        c.add();
    const double wall = nowMs() - start;
    return wall * 1e6 / static_cast<double>(iters);
}

double
histogramLoopNs(int iters)
{
    static Histogram &h =
        MetricsRegistry::instance().histogram("bench.obs.hist");
    const double start = nowMs();
    for (int i = 0; i < iters; ++i)
        h.record(static_cast<uint64_t>(i));
    const double wall = nowMs() - start;
    return wall * 1e6 / static_cast<double>(iters);
}

// --- Exporter round trip --------------------------------------------

struct ExportResult
{
    size_t events = 0;
    bool valid = false;
};

/** Record a known span tree, export, and sanity-check the JSON the
 *  way the CI obs job's real parser would. */
ExportResult
runExportRoundTrip()
{
    setTraceEnabled(true);
    clearTrace();
    setTraceThreadName("bench-obs-main");
    {
        TraceCorrelation correlation(42);
        QBASIS_TRACE_SCOPE("bench.outer", "alpha", uint64_t{1});
        QBASIS_TRACE_SCOPE("bench.inner", "beta", uint64_t{2});
    }
    ExportResult r;
    r.events = traceSnapshot().size();
    const std::string json = chromeTraceJson();
    r.valid = r.events == 2
              && json.find("{\"traceEvents\":[") != std::string::npos
              && json.find("\"name\":\"bench.outer\"")
                     != std::string::npos
              && json.find("\"request_id\":42") != std::string::npos
              && json.find("bench-obs-main") != std::string::npos
              && std::count(json.begin(), json.end(), '{')
                     == std::count(json.begin(), json.end(), '}');
    setTraceEnabled(false);
    clearTrace();
    return r;
}

// --- Digest neutrality ----------------------------------------------

struct DigestResult
{
    int requests = 0;
    bool compile_match = false;
    bool health_match = false;
    bool fleet_match = false;
};

/** One serving pass over the fixed mix; digests out. */
void
runServicePass(std::vector<uint64_t> &compile_digests,
               uint64_t &health_digest)
{
    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11), quadSpec(12)});
    for (const CompileRequest &req : requestMix()) {
        const CompileResponse resp = service.compileSync(req);
        compile_digests.push_back(
            resp.status == CompileStatus::Ok
                ? compileResponseDigest(resp)
                : 0);
    }
    health_digest =
        healthReportDigest(service.driver().cycleReport(0).health);
    service.stop();
}

uint64_t
runFleetPass()
{
    FleetOptions fopts;
    fopts.shards = 1;
    fopts.threads = 2;
    fopts.synth = cheapSynth();
    fopts.calib.edge_limit = 1;
    FleetDriver driver(fopts);
    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft2", qftCircuit(2)});
    return fleetReportDigest(driver.run({quadSpec(11)}, circuits));
}

/** The zero-perturbation contract: identical fresh workloads with
 *  tracing OFF and then ON must produce byte-identical committed
 *  digests (only wall-clock fields may move). */
DigestResult
runDigestNeutrality()
{
    DigestResult r;
    setTraceEnabled(false);
    std::vector<uint64_t> off_compile, on_compile;
    uint64_t off_health = 0, on_health = 0;
    runServicePass(off_compile, off_health);
    const uint64_t off_fleet = runFleetPass();

    setTraceEnabled(true);
    clearTrace();
    runServicePass(on_compile, on_health);
    const uint64_t on_fleet = runFleetPass();
    const bool traced = !traceSnapshot().empty();
    setTraceEnabled(false);
    clearTrace();

    r.requests = static_cast<int>(off_compile.size());
    r.compile_match = traced && off_compile == on_compile
                      && std::find(off_compile.begin(),
                                   off_compile.end(), uint64_t{0})
                             == off_compile.end();
    r.health_match = off_health == on_health;
    r.fleet_match = off_fleet == on_fleet;
    return r;
}

void
writeJson(const char *path, bool quick, bool smoke, int disabled_iters,
          double disabled_ns, int enabled_iters, double enabled_ns,
          double counter_ns, double hist_ns, const ExportResult &exp,
          const DigestResult &dig)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_obs: cannot write %s", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
        "  \"spans\": {\n"
        "    \"disabled_iters\": %d,\n"
        "    \"disabled_ns_per_span\": %.3f,\n"
        "    \"enabled_iters\": %d,\n"
        "    \"enabled_ns_per_span\": %.3f\n  },\n"
        "  \"metrics\": {\n"
        "    \"counter_ns\": %.3f,\n"
        "    \"histogram_record_ns\": %.3f\n  },\n"
        "  \"export\": {\n"
        "    \"events\": %zu,\n"
        "    \"valid\": %s\n  },\n"
        "  \"digests\": {\n"
        "    \"requests\": %d,\n"
        "    \"compile_match\": %s,\n"
        "    \"health_match\": %s,\n"
        "    \"fleet_match\": %s\n  }\n}\n",
        quick ? "true" : "false", smoke ? "true" : "false",
        disabled_iters, disabled_ns, enabled_iters, enabled_ns,
        counter_ns, hist_ns, exp.events, exp.valid ? "true" : "false",
        dig.requests, dig.compile_match ? "true" : "false",
        dig.health_match ? "true" : "false",
        dig.fleet_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_obs [--quick|--smoke]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_obs: tracing + metrics overhead ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");

    const int disabled_iters = smoke   ? 2000000
                               : quick ? 10000000
                                       : 50000000;
    const int enabled_iters = smoke ? 100000 : 400000;
    const int metric_iters = smoke ? 2000000 : 10000000;

    // Disabled path first (the number the zero-perturbation contract
    // rides on): warm-up loop, then the measured loop.
    setTraceEnabled(false);
    spanLoopNs(std::min(disabled_iters, 100000));
    const double disabled_ns = spanLoopNs(disabled_iters);
    std::printf("span disabled: %.2f ns/span (%d iters)\n",
                disabled_ns, disabled_iters);

    setTraceEnabled(true);
    clearTrace();
    spanLoopNs(std::min(enabled_iters, 10000));
    const double enabled_ns = spanLoopNs(enabled_iters);
    setTraceEnabled(false);
    clearTrace();
    std::printf("span enabled:  %.2f ns/span (%d iters, ring-buffer "
                "append)\n", enabled_ns, enabled_iters);

    const double counter_ns = counterLoopNs(metric_iters);
    const double hist_ns = histogramLoopNs(metric_iters);
    std::printf("counter add:   %.2f ns\n", counter_ns);
    std::printf("histogram rec: %.2f ns\n", hist_ns);

    std::printf("[export] span tree -> Chrome JSON round trip...\n");
    const ExportResult exp = runExportRoundTrip();
    std::printf("export: %zu events, %s\n", exp.events,
                exp.valid ? "valid" : "INVALID");

    std::printf("[digests] traced vs untraced serving + fleet "
                "passes...\n");
    const DigestResult dig = runDigestNeutrality();
    std::printf("digest neutrality over %d requests: compile %s, "
                "health %s, fleet %s\n",
                dig.requests, dig.compile_match ? "match" : "MISMATCH",
                dig.health_match ? "match" : "MISMATCH",
                dig.fleet_match ? "match" : "MISMATCH");

    writeJson("BENCH_obs.json", quick, smoke, disabled_iters,
              disabled_ns, enabled_iters, enabled_ns, counter_ns,
              hist_ns, exp, dig);

    const bool ok = exp.valid && dig.compile_match && dig.health_match
                    && dig.fleet_match;
    if (!ok)
        std::printf("FAIL: observability contract violated\n");
    return ok ? 0 : 1;
}
