/**
 * @file
 * Synthesis-engine benchmark: measures the combined effect of the
 * Weyl-class cache and the thread-pooled multistart engine against
 * the seed's serial path, and emits BENCH_synth.json so the perf
 * trajectory is tracked across PRs.
 *
 * Workloads:
 *   gate_sweep  Table-1-style device sweep: SWAP + CNOT on every
 *               edge of a device whose edges replicate a few
 *               calibrated basis gates (the bench drivers'
 *               QBASIS_EDGE_LIMIT fast mode does exactly this).
 *   qft         All 2Q synthesis requests of a routed QFT circuit
 *               against a uniform edge basis (repeated controlled-
 *               phase angles + routing SWAPs).
 *
 * The baseline reproduces the seed implementation's behavior: strict
 * serial synthesis with per-(edge, target-hash) memoization, i.e. no
 * sharing across edges, orientations, or locally-equivalent targets.
 *
 * Usage: bench_synth [--quick] [--threads N]
 *
 * JSON schema (BENCH_synth.json):
 * {
 *   "quick": bool, "threads": int,
 *   "mat4_backend": "scalar"|"avx2",
 *   "workloads": { "<name>": {
 *       "requests": int, "weyl_classes": int,
 *       "serial_seed_path_ms": double, "engine_ms": double,
 *       "speedup": double, "cache_hits": int, "cache_misses": int,
 *       "cache_hit_rate": double, "results_match": bool,
 *       "report_digest": "0x..." } }
 * }
 *
 * report_digest is an FNV-64 over the engine path's decomposition
 * bytes (layer counts, local gates, phases, infidelities): the
 * simd-determinism CI job runs this bench under forced-scalar and
 * auto-dispatch builds and diffs the digests for bit-identity.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/qft.hpp"
#include "circuit/coupling.hpp"
#include "linalg/mat4_kernels.hpp"
#include "synth/depth_cache.hpp"
#include "synth/engine.hpp"
#include "transpile/basis_translate.hpp"
#include "transpile/layout.hpp"
#include "transpile/merge_1q.hpp"
#include "transpile/routing.hpp"
#include "util/fnv.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

using namespace qbasis;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Seed-path baseline: serial synthesis memoized per
 *  (edge, target-hash) -- the exact pre-engine cache semantics. */
std::vector<TwoQubitDecomposition>
serialSeedPath(const std::vector<SynthRequest> &requests,
               const SynthOptions &opts)
{
    std::map<std::pair<int, uint64_t>, TwoQubitDecomposition> memo;
    std::vector<TwoQubitDecomposition> out;
    out.reserve(requests.size());
    for (const SynthRequest &req : requests) {
        const std::pair<int, uint64_t> key{
            req.edge_id, DecompositionCache::hashGate(req.target)};
        auto it = memo.find(key);
        if (it == memo.end()) {
            it = memo.emplace(key, synthesizeGate(req.target,
                                                  req.basis, opts))
                     .first;
        }
        out.push_back(it->second);
    }
    return out;
}

/**
 * FNV-64 over the decomposition bytes the determinism contract
 * covers (layer counts, local 1Q gates, global phases,
 * infidelities) -- bit-identical across kernel backends by the
 * contract in linalg/mat4_kernels.hpp; timings are excluded.
 */
uint64_t
decompositionsDigest(const std::vector<TwoQubitDecomposition> &decs)
{
    Fnv64 fnv;
    const auto mix_complex = [&fnv](const Complex &z) {
        fnv.mixDouble(z.real());
        fnv.mixDouble(z.imag());
    };
    for (const TwoQubitDecomposition &d : decs) {
        fnv.mix(static_cast<uint64_t>(d.layers()));
        fnv.mixDouble(d.infidelity);
        mix_complex(d.phase);
        for (const LocalPair &l : d.locals) {
            for (int i = 0; i < 2; ++i) {
                for (int j = 0; j < 2; ++j) {
                    mix_complex(l.q1(i, j));
                    mix_complex(l.q0(i, j));
                }
            }
        }
    }
    return fnv.h;
}

struct WorkloadResult
{
    std::string name;
    size_t requests = 0;
    size_t weyl_classes = 0;
    double serial_ms = 0.0;
    double engine_ms = 0.0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t report_digest = 0;
    bool results_match = true;

    double
    speedup() const
    {
        return engine_ms > 0.0 ? serial_ms / engine_ms : 0.0;
    }

    double
    hitRate() const
    {
        const uint64_t total = cache_hits + cache_misses;
        return total > 0
                   ? static_cast<double>(cache_hits)
                         / static_cast<double>(total)
                   : 0.0;
    }
};

WorkloadResult
runWorkload(const std::string &name,
            const std::vector<SynthRequest> &requests,
            SynthEngine &engine, const SynthOptions &opts)
{
    WorkloadResult r;
    r.name = name;
    r.requests = requests.size();

    // Each timed path starts with a cold process-wide depth-oracle
    // cache so neither side's verdicts subsidize the other.
    DepthOracleCache::shared().clear();
    const double t0 = nowMs();
    const std::vector<TwoQubitDecomposition> base =
        serialSeedPath(requests, opts);
    const double t1 = nowMs();

    DepthOracleCache::shared().clear();
    DecompositionCache cache;
    const std::vector<TwoQubitDecomposition> fast =
        engine.synthesizeBatch(requests, cache, opts);
    const double t2 = nowMs();

    r.serial_ms = t1 - t0;
    r.engine_ms = t2 - t1;
    r.weyl_classes = cache.size();
    r.cache_hits = cache.hits();
    r.cache_misses = cache.misses();
    r.report_digest = decompositionsDigest(fast);

    // Both paths must realize every target (the decompositions may
    // differ in depth-degenerate cases, but each must reconstruct
    // its target).
    for (size_t i = 0; i < requests.size(); ++i) {
        if (traceInfidelity(base[i].reconstruct(),
                            requests[i].target) > 1e-6
            || traceInfidelity(fast[i].reconstruct(),
                               requests[i].target) > 1e-6) {
            r.results_match = false;
        }
    }
    return r;
}

/** Table-1-style sweep: SWAP + CNOT per edge, bases replicated. */
std::vector<SynthRequest>
gateSweepRequests(int edges, int distinct_bases)
{
    // Distinct calibrated points along a plausible nonstandard
    // trajectory arc (off-axis canonical coordinates).
    std::vector<Mat4> bases;
    for (int b = 0; b < distinct_bases; ++b) {
        const double s =
            static_cast<double>(b) / std::max(1, distinct_bases - 1);
        bases.push_back(canonicalGate(0.22 + 0.10 * s,
                                      0.18 + 0.08 * s, 0.05 * s));
    }
    std::vector<SynthRequest> requests;
    for (int e = 0; e < edges; ++e) {
        SynthRequest swap_req;
        swap_req.edge_id = e;
        swap_req.target = swapGate();
        swap_req.basis = bases[static_cast<size_t>(e)
                               % bases.size()];
        requests.push_back(swap_req);
        SynthRequest cnot_req = swap_req;
        cnot_req.target = cnotGate();
        requests.push_back(cnot_req);
    }
    return requests;
}

/** All 2Q synthesis requests of a routed QFT circuit. */
std::vector<SynthRequest>
qftRequests(int qubits, int rows, int cols)
{
    const CouplingMap cm = CouplingMap::grid(rows, cols);
    std::vector<EdgeBasis> bases(cm.edges().size());
    for (size_t e = 0; e < bases.size(); ++e) {
        bases[e].gate = canonicalGate(0.28, 0.21, 0.05);
        bases[e].duration_ns = 15.0;
        bases[e].label = "xy";
    }
    const Circuit logical = qftCircuit(qubits);
    const SabreOptions sabre;
    const std::vector<int> layout = sabreLayout(logical, cm, 3, sabre);
    const RoutedCircuit routed = sabreRoute(logical, cm, layout, sabre);
    const Circuit merged = mergeSingleQubitRuns(routed.circuit);
    return collectSynthRequests(merged, cm, bases);
}

void
writeJson(const char *path, bool quick, int threads,
          const std::vector<WorkloadResult> &results)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_synth: cannot write %s", path);
        return;
    }
    std::fprintf(f, "{\n  \"quick\": %s,\n  \"threads\": %d,\n"
                 "  \"mat4_backend\": \"%s\",\n"
                 "  \"workloads\": {\n", quick ? "true" : "false",
                 threads, mat4BackendName(activeMat4Backend()));
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        std::fprintf(
            f,
            "    \"%s\": {\n"
            "      \"requests\": %zu,\n"
            "      \"weyl_classes\": %zu,\n"
            "      \"serial_seed_path_ms\": %.3f,\n"
            "      \"engine_ms\": %.3f,\n"
            "      \"speedup\": %.3f,\n"
            "      \"cache_hits\": %llu,\n"
            "      \"cache_misses\": %llu,\n"
            "      \"cache_hit_rate\": %.4f,\n"
            "      \"results_match\": %s,\n"
            "      \"report_digest\": \"0x%016llx\"\n"
            "    }%s\n",
            r.name.c_str(), r.requests, r.weyl_classes, r.serial_ms,
            r.engine_ms, r.speedup(),
            static_cast<unsigned long long>(r.cache_hits),
            static_cast<unsigned long long>(r.cache_misses),
            r.hitRate(), r.results_match ? "true" : "false",
            static_cast<unsigned long long>(r.report_digest),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: bench_synth [--quick] [--threads N]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    SynthEngine engine(threads);
    std::printf("=== bench_synth: Weyl-class cache + thread-pooled "
                "multistart ===\n");
    std::printf("threads: %d, mode: %s\n", engine.threadCount(),
                quick ? "quick" : "full");
    std::printf("mat4 backend: %s\n", mat4BackendBanner().c_str());

    const SynthOptions opts;
    std::vector<WorkloadResult> results;

    {
        const int edges = quick ? 8 : 40;
        const int distinct = quick ? 2 : 10;
        std::printf("\n[gate_sweep] %d edges, %d distinct bases...\n",
                    edges, distinct);
        results.push_back(runWorkload(
            "gate_sweep", gateSweepRequests(edges, distinct), engine,
            opts));
    }
    {
        const int qubits = quick ? 6 : 12;
        const int rows = quick ? 2 : 3;
        const int cols = quick ? 3 : 4;
        std::printf("[qft] %d qubits on %dx%d grid...\n", qubits,
                    rows, cols);
        results.push_back(runWorkload(
            "qft", qftRequests(qubits, rows, cols), engine, opts));
    }

    std::printf("\n%-12s %9s %8s %12s %11s %9s %9s %7s\n", "workload",
                "requests", "classes", "serial (ms)", "engine (ms)",
                "speedup", "hit rate", "match");
    for (const WorkloadResult &r : results) {
        std::printf("%-12s %9zu %8zu %12.1f %11.1f %8.2fx %8.1f%% "
                    "%7s\n",
                    r.name.c_str(), r.requests, r.weyl_classes,
                    r.serial_ms, r.engine_ms, r.speedup(),
                    100.0 * r.hitRate(),
                    r.results_match ? "yes" : "NO");
    }
    for (const WorkloadResult &r : results) {
        std::printf("report digest [%s]: 0x%016llx\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.report_digest));
    }

    writeJson("BENCH_synth.json", quick, engine.threadCount(),
              results);

    bool ok = true;
    for (const WorkloadResult &r : results)
        ok = ok && r.results_match;
    return ok ? 0 : 1;
}
