/**
 * @file
 * Serving benchmark: a long-lived CompileService under an open-loop
 * client (fixed-seed exponential interarrivals over a fixed request
 * mix), reporting sustained throughput and queue+compile latency
 * percentiles (p50/p95/p99). Emits BENCH_serve.json for the CI bench
 * gate (scripts/check_bench.py).
 *
 * Beyond the latency numbers, the run gates the serving contracts
 * through its exit code:
 *
 *  - **Determinism.** A fixed request set served serially and then
 *    twice concurrently (shuffled arrival order, several client
 *    threads) must produce bit-identical per-request responses
 *    (compileResponseDigest) at the same basis epoch.
 *  - **Epoch swap.** Recalibrating an edge mid-stream must never
 *    block or fail traffic; after the drain, responses carry the new
 *    epoch and their digests legitimately change.
 *  - **Admission.** A burst beyond queue capacity must degrade to
 *    CompileStatus::Rejected responses -- every future resolves,
 *    nothing hangs (the CI ctest/step timeout is the backstop).
 *
 *  - **Plan cache.** A Zipf-skewed shape stream (repeats dominate,
 *    like production traffic) is served twice by identically-specced
 *    services -- plan cache off, then on. Every per-request digest
 *    must match bit-for-bit (plan-hit and plan-miss paths are
 *    indistinguishable in the response), the memo and replay tiers
 *    must both fire, and the plan-on p50 must beat the plan-off p50
 *    by >= 10x (the committed floor lives in bench/baselines.json as
 *    serve.min_zipf_p50_speedup).
 *
 * Usage: bench_serve [--quick|--smoke] [--threads N] [--faults [seed]]
 *                    [--plan-save PATH] [--plan-load PATH]
 *
 * --plan-save writes the plan-on service's cache snapshot (Weyl
 * classes + transpile plans) after the Zipf phase; --plan-load
 * warm-starts the plan-on service from such a snapshot before the
 * phase, so CI can prove the plan tier round-trips across processes
 * (zipf.plans_loaded and the zipf.stream_digest must reproduce).
 *
 * --faults arms the deterministic fault registry twice over the same
 * plan on the `serve.admit` site (keyed by request fingerprint, so
 * the admit/reject pattern is a pure function of the plan) and
 * replays the stream under two different client interleavings: the
 * per-request status pattern and all served digests must match
 * bit-for-bit. A second phase quarantines every edge (recalib.simulate
 * at p=1.0) and asserts traffic keeps being served Ok from the
 * last-good bases at an unchanged epoch.
 *
 * JSON schema (BENCH_serve.json):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "service": { "devices": int, "dispatchers": int,
 *                "max_batch": int, "queue_capacity": int },
 *   "open_loop": { "requests": int, "offered_rps": double,
 *                  "wall_ms": double, "throughput_rps": double,
 *                  "p50_ms": double, "p95_ms": double,
 *                  "p99_ms": double, "max_queue_depth": int,
 *                  "batches": int },
 *   "admission": { "burst": int, "served": int, "rejected": int,
 *                  "all_resolved": bool },
 *   "determinism": { "requests": int, "interleavings": int,
 *                    "bit_identical": bool },
 *   "epoch_swap": { "old_epoch": int, "new_epoch": int,
 *                   "served_during_swap": bool,
 *                   "digest_changed": bool },
 *   "zipf": { "requests": int, "shapes": int, "exponent": double,
 *             "p50_off_ms": double, "p50_on_ms": double,
 *             "zipf_p50_speedup": double, "digests_match": bool,
 *             "memo_hits": int, "replay_hits": int,
 *             "plan_misses": int, "plans_loaded": int,
 *             "stream_digest": "decimal-u64" },
 *   "faults": { "seed": int, "probability": double,
 *               "admit_rejected": int, "replay_identical": bool,
 *               "quarantined_served_ok": bool }       // --faults only
 * }
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apps/bv.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "apps/workloads.hpp"
#include "calib/drift.hpp"
#include "obs/metrics.hpp"
#include "serve/compile_service.hpp"
#include "util/fault.hpp"
#include "util/fnv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace qbasis;

namespace {

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

struct BenchConfig
{
    int devices = 3;
    int requests = 120;          ///< Open-loop arrivals.
    double mean_interarrival_ms = 2.0;
    int threads = 0;
    uint64_t arrival_seed = 777;
};

CompileServiceOptions
benchServiceOptions(const BenchConfig &cfg)
{
    CompileServiceOptions opts;
    opts.fleet.shards = cfg.devices;
    opts.fleet.threads = cfg.threads;
    opts.fleet.synth = benchSynth();
    opts.fleet.calib.edge_limit = 1;
    // Bench-scale simulator settings (as bench_recalib): keep the
    // one-off calibration cheap relative to the serving phases.
    opts.fleet.calib.sim.dt = 0.01;
    opts.fleet.calib.sim.probe_dt = 0.04;
    opts.fleet.calib.sim.probe_duration = 60.0;
    opts.fleet.calib.sim.drive_scan_points = 7;
    opts.queue_capacity = 256;
    opts.dispatchers = 3;
    opts.max_batch = 8;
    return opts;
}

std::vector<FleetDeviceSpec>
benchFleet(int devices)
{
    std::vector<FleetDeviceSpec> specs;
    specs.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
        FleetDeviceSpec spec;
        spec.grid.rows = 2;
        spec.grid.cols = 2;
        spec.grid.seed = 31 + static_cast<uint64_t>(d);
        spec.xi = 0.04;
        specs.push_back(std::move(spec));
    }
    return specs;
}

/** The fixed request mix every phase replays (ids are 1-based). */
std::vector<CompileRequest>
requestMix(int devices, int count)
{
    std::vector<Circuit> circuits;
    std::vector<std::string> names;
    circuits.push_back(qftCircuit(2)); names.push_back("qft2");
    circuits.push_back(qftCircuit(3)); names.push_back("qft3");
    circuits.push_back(qftCircuit(4)); names.push_back("qft4");
    circuits.push_back(bvAllOnesCircuit(3)); names.push_back("bv3");
    QaoaParams qp;
    qp.gamma = 0.4;
    qp.beta = 0.25;
    circuits.push_back(qaoaErdosRenyiCircuit(4, 0.5, qp));
    names.push_back("qaoa4");

    std::vector<CompileRequest> reqs;
    reqs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const size_t c = static_cast<size_t>(i) % circuits.size();
        reqs.emplace_back(static_cast<uint64_t>(i + 1), i % devices,
                          names[c], circuits[c]);
    }
    return reqs;
}

/** Submit every request from `threads` clients in `order`; gather. */
std::vector<CompileResponse>
submitConcurrently(CompileService &service,
                   const std::vector<CompileRequest> &reqs,
                   const std::vector<size_t> &order, int threads)
{
    std::vector<std::future<CompileResponse>> futures(reqs.size());
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = static_cast<size_t>(t); i < order.size();
                 i += static_cast<size_t>(threads)) {
                const size_t r = order[i];
                futures[r] = service.submit(reqs[r]);
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    std::vector<CompileResponse> responses;
    responses.reserve(reqs.size());
    for (auto &f : futures)
        responses.push_back(f.get());
    return responses;
}

std::vector<size_t>
identityOrder(size_t n)
{
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    return order;
}

// --- Open-loop phase ------------------------------------------------

struct OpenLoopResult
{
    int requests = 0;
    double offered_rps = 0.0;
    double wall_ms = 0.0;
    double throughput_rps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    uint64_t max_queue_depth = 0;
    uint64_t batches = 0;
    bool all_ok = false;
};

/**
 * Open-loop client: arrivals at fixed-seed exponential interarrival
 * times, independent of service-side progress (a closed loop would
 * hide queueing under load). Latency is the response's own
 * queue_ms + compile_ms, so the numbers survive scheduling noise in
 * the submitting thread.
 */
OpenLoopResult
runOpenLoop(CompileService &service, const BenchConfig &cfg)
{
    const std::vector<CompileRequest> reqs =
        requestMix(cfg.devices, cfg.requests);

    // Warm pass (untimed): a live service has synthesized its
    // steady-state Weyl classes; the open loop measures serving, not
    // one-off cold synthesis.
    for (const CompileRequest &req : reqs)
        service.compileSync(req);
    const CompileServiceStats warm = service.stats();

    Rng rng(cfg.arrival_seed);
    std::vector<double> arrival_ms(reqs.size());
    double t = 0.0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        t += -cfg.mean_interarrival_ms
             * std::log(1.0 - rng.uniform());
        arrival_ms[i] = t;
    }

    std::vector<std::future<CompileResponse>> futures(reqs.size());
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reqs.size(); ++i) {
        const auto due = start
                         + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 arrival_ms[i]));
        std::this_thread::sleep_until(due);
        futures[i] = service.submit(reqs[i]);
    }

    OpenLoopResult r;
    r.all_ok = true;
    std::vector<double> latencies;
    latencies.reserve(reqs.size());
    for (auto &f : futures) {
        const CompileResponse resp = f.get();
        if (resp.status != CompileStatus::Ok)
            r.all_ok = false;
        latencies.push_back(resp.queue_ms + resp.compile_ms);
    }
    const auto end = std::chrono::steady_clock::now();
    r.wall_ms = std::chrono::duration<double, std::milli>(end - start)
                    .count();
    r.requests = static_cast<int>(reqs.size());
    r.offered_rps = 1000.0 / cfg.mean_interarrival_ms;
    r.throughput_rps = r.wall_ms > 0.0 ? 1000.0
                                             * static_cast<double>(
                                                 reqs.size())
                                             / r.wall_ms
                                       : 0.0;
    std::sort(latencies.begin(), latencies.end());
    r.p50_ms = percentileSorted(latencies, 0.50);
    r.p95_ms = percentileSorted(latencies, 0.95);
    r.p99_ms = percentileSorted(latencies, 0.99);
    const CompileServiceStats stats = service.stats();
    r.max_queue_depth = stats.max_queue_depth;
    r.batches = stats.batches - warm.batches;
    return r;
}

// --- Admission phase ------------------------------------------------

struct AdmissionResult
{
    int burst = 0;
    int served = 0;
    int rejected = 0;
    bool all_resolved = false;
};

/**
 * Saturate a deliberately tiny service (1-deep queue, one
 * dispatcher): a cold compile pins the dispatcher while a burst lands
 * in microseconds, so the overflow must come back as Rejected
 * responses -- and every future must resolve.
 */
AdmissionResult
runAdmissionBurst(const BenchConfig &cfg)
{
    CompileServiceOptions opts = benchServiceOptions(cfg);
    opts.queue_capacity = 1;
    opts.dispatchers = 1;
    opts.max_batch = 1;
    CompileService service(opts);
    service.start(benchFleet(1));

    AdmissionResult r;
    std::vector<std::future<CompileResponse>> futures;
    futures.push_back(
        service.submit(CompileRequest(1, 0, "qft4", qftCircuit(4))));
    for (uint64_t id = 2; id <= 24; ++id) {
        futures.push_back(service.submit(
            CompileRequest(id, 0, "qft2", qftCircuit(2))));
    }
    r.burst = static_cast<int>(futures.size());
    r.all_resolved = true;
    for (auto &f : futures) {
        const CompileResponse resp = f.get();
        if (resp.status == CompileStatus::Rejected)
            ++r.rejected;
        else if (resp.status == CompileStatus::Ok)
            ++r.served;
        else
            r.all_resolved = false; // Failed: not an admission outcome
    }
    service.stop();
    return r;
}

// --- Determinism + epoch-swap phases --------------------------------

struct DeterminismResult
{
    int requests = 0;
    int interleavings = 0;
    bool bit_identical = false;
};

DeterminismResult
runDeterminism(CompileService &service, const BenchConfig &cfg)
{
    const std::vector<CompileRequest> reqs =
        requestMix(cfg.devices, std::min(cfg.requests, 24));
    DeterminismResult r;
    r.requests = static_cast<int>(reqs.size());
    r.bit_identical = true;

    std::map<uint64_t, uint64_t> serial;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        if (resp.status != CompileStatus::Ok) {
            r.bit_identical = false;
            return r;
        }
        serial[resp.request_id] = compileResponseDigest(resp);
    }
    for (const uint64_t shuffle_seed : {1u, 2u}) {
        std::vector<size_t> order = identityOrder(reqs.size());
        Rng rng(shuffle_seed);
        rng.shuffle(order);
        const std::vector<CompileResponse> responses =
            submitConcurrently(service, reqs, order, 4);
        ++r.interleavings;
        for (const CompileResponse &resp : responses) {
            if (resp.status != CompileStatus::Ok
                || compileResponseDigest(resp)
                       != serial[resp.request_id])
                r.bit_identical = false;
        }
    }
    return r;
}

struct EpochSwapResult
{
    uint64_t old_epoch = 0;
    uint64_t new_epoch = 0;
    bool served_during_swap = false;
    bool digest_changed = false;
};

/**
 * Retune device 0's edge 0 with drifted parameters while a shuffled
 * stream is in flight: traffic must keep resolving Ok (from the old
 * or new snapshot), and after the drain the same requests must carry
 * the new epoch with changed digests.
 */
EpochSwapResult
runEpochSwap(CompileService &service, const BenchConfig &cfg)
{
    const std::vector<CompileRequest> reqs =
        requestMix(cfg.devices, std::min(cfg.requests, 24));
    EpochSwapResult r;
    r.old_epoch = service.basisEpoch(0);

    std::map<uint64_t, uint64_t> before;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        if (resp.status != CompileStatus::Ok)
            return r;
        before[resp.request_id] = compileResponseDigest(resp);
    }

    const DriftModel model{1e-4, 5e-3};
    RecalibEdgeRequest retune;
    retune.device_id = 0;
    retune.edge_id = 0;
    retune.cycle = 1;
    retune.params = driftParamsAt(
        service.driver().device(0).device.edgeParams(0), model,
        cfg.arrival_seed, 0, 1);
    service.recalibrate({retune});

    std::vector<size_t> order = identityOrder(reqs.size());
    Rng rng(3);
    rng.shuffle(order);
    const std::vector<CompileResponse> mid =
        submitConcurrently(service, reqs, order, 4);
    r.served_during_swap = true;
    for (const CompileResponse &resp : mid)
        if (resp.status != CompileStatus::Ok)
            r.served_during_swap = false;
    service.drainRecalibration();
    r.new_epoch = service.basisEpoch(0);

    r.digest_changed = r.new_epoch == r.old_epoch + 1;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        if (resp.status != CompileStatus::Ok)
            return r;
        const bool changed =
            compileResponseDigest(resp) != before[resp.request_id];
        // Device-0 responses must change (the epoch is part of the
        // digest); other devices must not.
        if ((req.device_id == 0) != changed)
            r.digest_changed = false;
    }
    return r;
}

// --- Zipf plan-cache phase ------------------------------------------

struct ZipfResult
{
    int requests = 0;
    int shapes = 0;
    double exponent = 1.1;
    double p50_off_ms = 0.0;
    double p50_on_ms = 0.0;
    double speedup = 0.0;
    bool all_ok = false;
    bool digests_match = false;
    uint64_t memo_hits = 0;
    uint64_t replay_hits = 0;
    uint64_t plan_misses = 0;
    uint64_t plans_loaded = 0;
    uint64_t stream_digest = 0;
    bool snapshot_saved = true; ///< false only if --plan-save failed.
};

/** Parametric ansatz shape: 1Q rotations vary per draw, the CX
 *  entanglers never do -- so a repeat at a fresh angle replays the
 *  stored plan against already-published Weyl classes. */
Circuit
zipfAnsatz(int n, double theta)
{
    Circuit c(n);
    for (int q = 0; q < n; ++q) {
        c.h(q);
        c.rz(q, theta + 0.1 * q);
    }
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    for (int q = 0; q < n; ++q)
        c.ry(q, 0.5 * theta - 0.2 * q);
    return c;
}

constexpr size_t kZipfShapes = 12;

Circuit
zipfShapeCircuit(size_t shape, double theta)
{
    // Tail ranks 8..11 come from the registered workload zoo
    // (apps/workloads.hpp) at fixed angles, so their repeats are
    // memo-tier traffic like the rest of the fixed head.
    WorkloadParams zoo;
    zoo.qubits = 4;
    switch (shape) {
    case 0: return qftCircuit(3);
    case 1: return qftCircuit(2);
    case 2: return bvAllOnesCircuit(3);
    case 3: return zipfAnsatz(3, theta);
    case 4: return qftCircuit(4);
    case 5: {
        QaoaParams qp;
        qp.gamma = 0.4;
        qp.beta = 0.25;
        return qaoaErdosRenyiCircuit(4, 0.5, qp);
    }
    case 6: return zipfAnsatz(4, theta);
    case 7: return bvAllOnesCircuit(4);
    case 8: return makeWorkload("ising", zoo);
    case 9:
        zoo.theta = 0.42;
        return makeWorkload("heisenberg", zoo);
    case 10:
        zoo.depth = 2;
        return makeWorkload("rcs", zoo);
    default:
        zoo.depth = 2;
        zoo.seed = 7; // distinct sampled gates from rank 10
        return makeWorkload("rcs", zoo);
    }
}

/**
 * A Zipf(s)-distributed stream over kZipfShapes shapes. Rank order is
 * popularity order: the head ranks are fixed circuits whose repeats
 * are exact (memo-tier traffic); ranks 3 and 6 are parametric ansatz
 * shapes drawn with a fresh angle every time (replay-tier traffic);
 * the tail ranks (8+) are fixed-angle workload-zoo circuits
 * (trotterized Ising/Heisenberg, RCS layers). Each shape is pinned
 * to device (shape % devices), so its repeats always carry the same
 * (device, epoch) plan key.
 */
std::vector<CompileRequest>
zipfRequestMix(int devices, int count, double exponent, uint64_t seed)
{
    double weight[kZipfShapes];
    double total = 0.0;
    for (size_t r = 0; r < kZipfShapes; ++r) {
        weight[r] = 1.0
                    / std::pow(static_cast<double>(r + 1), exponent);
        total += weight[r];
    }
    static const char *const names[kZipfShapes] = {
        "qft3", "qft2", "bv3", "ansatz3",
        "qft4", "qaoa4", "ansatz4", "bv4",
        "ising4", "heisenberg4", "rcs4", "rcs4b"};
    Rng rng(seed);
    std::vector<CompileRequest> reqs;
    reqs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        double u = rng.uniform() * total;
        size_t shape = 0;
        while (shape + 1 < kZipfShapes && u >= weight[shape]) {
            u -= weight[shape];
            ++shape;
        }
        const bool parametric = shape == 3 || shape == 6;
        const double theta =
            parametric ? 0.15 + 0.01 * static_cast<double>(i) : 0.0;
        reqs.emplace_back(static_cast<uint64_t>(i + 1),
                          static_cast<int>(shape) % devices,
                          names[shape], zipfShapeCircuit(shape, theta));
    }
    return reqs;
}

/**
 * Serve the same Zipf stream through two identically-specced services
 * -- plan cache off, then on -- and compare per-request digests plus
 * p50 latency. Sequential compileSync keeps the latency measurement
 * free of queueing: the speedup is the plan tier's, not a batching
 * artifact.
 */
ZipfResult
runZipf(const BenchConfig &cfg, int zipf_requests,
        const char *plan_load, const char *plan_save)
{
    ZipfResult z;
    z.shapes = static_cast<int>(kZipfShapes);
    z.requests = zipf_requests;
    z.all_ok = true;
    const std::vector<CompileRequest> reqs = zipfRequestMix(
        cfg.devices, zipf_requests, z.exponent, 4242);

    const auto serveAll = [&](CompileService &svc,
                              std::vector<double> *lat,
                              std::vector<uint64_t> *digests) {
        for (const CompileRequest &req : reqs) {
            const CompileResponse resp = svc.compileSync(req);
            if (resp.status != CompileStatus::Ok)
                z.all_ok = false;
            lat->push_back(resp.queue_ms + resp.compile_ms);
            digests->push_back(compileResponseDigest(resp));
        }
    };

    std::vector<double> lat_off, lat_on;
    std::vector<uint64_t> dig_off, dig_on;
    {
        CompileServiceOptions opts = benchServiceOptions(cfg);
        opts.plan_cache = false;
        CompileService svc(opts);
        svc.start(benchFleet(cfg.devices));
        serveAll(svc, &lat_off, &dig_off);
        svc.stop();
    }
    {
        CompileServiceOptions opts = benchServiceOptions(cfg);
        opts.plan_cache = true;
        CompileService svc(opts);
        svc.start(benchFleet(cfg.devices));
        if (plan_load != nullptr) {
            // Warm start: classes and plans from a prior process.
            // Deterministic calibration reproduces that process's
            // epochs, so the persisted plan keys are live here.
            svc.driver().loadCache(plan_load);
            z.plans_loaded = svc.driver().planCache().stats().loaded;
        }
        serveAll(svc, &lat_on, &dig_on);
        const PlanCacheStats ps = svc.driver().planCache().stats();
        z.memo_hits = ps.memo_hits;
        z.replay_hits = ps.replay_hits;
        z.plan_misses = ps.misses;
        if (plan_save != nullptr)
            z.snapshot_saved = svc.driver().saveCache(plan_save).ok();
        svc.stop();
    }

    z.digests_match = dig_off == dig_on;
    Fnv64 fnv;
    for (const uint64_t d : dig_on)
        fnv.mix(d);
    z.stream_digest = fnv.h;
    std::sort(lat_off.begin(), lat_off.end());
    std::sort(lat_on.begin(), lat_on.end());
    z.p50_off_ms = percentileSorted(lat_off, 0.50);
    z.p50_on_ms = percentileSorted(lat_on, 0.50);
    z.speedup = z.p50_off_ms / std::max(z.p50_on_ms, 1e-6);
    return z;
}

// --- Faulted phases (--faults) --------------------------------------

struct FaultBench
{
    FaultPlan plan;
    int admit_rejected = 0;
    bool replay_identical = false;
    bool quarantined_served_ok = false;
};

/** Disarms the fault registry on scope exit. */
struct FaultScope
{
    explicit FaultScope(const FaultPlan &plan)
    {
        configureFaults(plan);
    }
    ~FaultScope() { disableFaults(); }
};

/**
 * Degraded-mode drills. First, the serve.admit replay pair: the same
 * plan over the same request set under two different client
 * interleavings must shed the same requests and serve the rest
 * bit-identically. Second, total recalibration failure: with
 * recalib.simulate firing at p=1.0 every retune quarantines, and
 * traffic must keep being served Ok from the last-good bases at an
 * unchanged epoch.
 */
FaultBench
runFaulted(CompileService &service, const BenchConfig &cfg,
           uint64_t seed)
{
    FaultBench fb;
    fb.plan.seed = seed;
    fb.plan.probability = 0.4;
    fb.plan.site_filter = "serve.admit";
    const std::vector<CompileRequest> reqs =
        requestMix(cfg.devices, std::min(cfg.requests, 24));
    std::vector<size_t> order = identityOrder(reqs.size());

    std::vector<CompileResponse> first, second;
    {
        const FaultScope scope(fb.plan);
        first = submitConcurrently(service, reqs, order, 4);
    }
    std::reverse(order.begin(), order.end());
    {
        const FaultScope scope(fb.plan); // re-arm: counters reset
        second = submitConcurrently(service, reqs, order, 2);
    }
    fb.replay_identical = true;
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (first[i].status != second[i].status)
            fb.replay_identical = false;
        if (first[i].status == CompileStatus::Rejected)
            ++fb.admit_rejected;
        else if (compileResponseDigest(first[i])
                 != compileResponseDigest(second[i]))
            fb.replay_identical = false;
    }
    // A p=0.4 plan over >= 20 requests that sheds nothing (or
    // everything) means the site is not firing per-request.
    if (fb.admit_rejected == 0
        || fb.admit_rejected == static_cast<int>(reqs.size()))
        fb.replay_identical = false;

    // Quarantine drill: every retune dies, service keeps serving.
    const uint64_t epoch_before = service.basisEpoch(0);
    {
        FaultPlan quarantine;
        quarantine.seed = seed;
        quarantine.probability = 1.0;
        quarantine.site_filter = "recalib.simulate";
        const FaultScope scope(quarantine);
        const DriftModel model{1e-4, 5e-3};
        std::vector<RecalibEdgeRequest> retunes;
        for (int d = 0; d < cfg.devices; ++d) {
            RecalibEdgeRequest retune;
            retune.device_id = d;
            retune.edge_id = 0;
            retune.cycle = 2;
            retune.params = driftParamsAt(
                service.driver().device(d).device.edgeParams(0),
                model, seed, 0, 2);
            retunes.push_back(std::move(retune));
        }
        service.recalibrate(retunes);
        service.drainRecalibration(); // contained: must not throw
    }
    fb.quarantined_served_ok =
        service.basisEpoch(0) == epoch_before;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        if (resp.status != CompileStatus::Ok
            || resp.basis_epoch
                   != service.basisEpoch(req.device_id))
            fb.quarantined_served_ok = false;
    }
    return fb;
}

void
writeJson(const char *path, bool quick, bool smoke,
          const BenchConfig &cfg, const CompileServiceOptions &sopts,
          const OpenLoopResult &open, const AdmissionResult &adm,
          const DeterminismResult &det, const EpochSwapResult &swap,
          const ZipfResult &zipf, const FaultBench *faults)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_serve: cannot write %s", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
        "  \"threads\": %d,\n"
        "  \"service\": {\n"
        "    \"devices\": %d,\n"
        "    \"dispatchers\": %d,\n"
        "    \"max_batch\": %zu,\n"
        "    \"queue_capacity\": %zu\n  },\n"
        "  \"open_loop\": {\n"
        "    \"requests\": %d,\n"
        "    \"offered_rps\": %.1f,\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"throughput_rps\": %.2f,\n"
        "    \"p50_ms\": %.3f,\n"
        "    \"p95_ms\": %.3f,\n"
        "    \"p99_ms\": %.3f,\n"
        "    \"max_queue_depth\": %llu,\n"
        "    \"batches\": %llu\n  },\n"
        "  \"admission\": {\n"
        "    \"burst\": %d,\n"
        "    \"served\": %d,\n"
        "    \"rejected\": %d,\n"
        "    \"all_resolved\": %s\n  },\n"
        "  \"determinism\": {\n"
        "    \"requests\": %d,\n"
        "    \"interleavings\": %d,\n"
        "    \"bit_identical\": %s\n  },\n"
        "  \"epoch_swap\": {\n"
        "    \"old_epoch\": %llu,\n"
        "    \"new_epoch\": %llu,\n"
        "    \"served_during_swap\": %s,\n"
        "    \"digest_changed\": %s\n  },\n"
        "  \"zipf\": {\n"
        "    \"requests\": %d,\n"
        "    \"shapes\": %d,\n"
        "    \"exponent\": %.2f,\n"
        "    \"p50_off_ms\": %.4f,\n"
        "    \"p50_on_ms\": %.4f,\n"
        "    \"zipf_p50_speedup\": %.2f,\n"
        "    \"digests_match\": %s,\n"
        "    \"memo_hits\": %llu,\n"
        "    \"replay_hits\": %llu,\n"
        "    \"plan_misses\": %llu,\n"
        "    \"plans_loaded\": %llu,\n"
        "    \"stream_digest\": \"%llu\"\n  }",
        quick ? "true" : "false", smoke ? "true" : "false",
        cfg.threads, cfg.devices, sopts.dispatchers, sopts.max_batch,
        sopts.queue_capacity, open.requests, open.offered_rps,
        open.wall_ms, open.throughput_rps, open.p50_ms, open.p95_ms,
        open.p99_ms,
        static_cast<unsigned long long>(open.max_queue_depth),
        static_cast<unsigned long long>(open.batches), adm.burst,
        adm.served, adm.rejected, adm.all_resolved ? "true" : "false",
        det.requests, det.interleavings,
        det.bit_identical ? "true" : "false",
        static_cast<unsigned long long>(swap.old_epoch),
        static_cast<unsigned long long>(swap.new_epoch),
        swap.served_during_swap ? "true" : "false",
        swap.digest_changed ? "true" : "false", zipf.requests,
        zipf.shapes, zipf.exponent, zipf.p50_off_ms, zipf.p50_on_ms,
        zipf.speedup, zipf.digests_match ? "true" : "false",
        static_cast<unsigned long long>(zipf.memo_hits),
        static_cast<unsigned long long>(zipf.replay_hits),
        static_cast<unsigned long long>(zipf.plan_misses),
        static_cast<unsigned long long>(zipf.plans_loaded),
        static_cast<unsigned long long>(zipf.stream_digest));
    if (faults != nullptr) {
        std::fprintf(
            f,
            ",\n  \"faults\": {\n"
            "    \"seed\": %llu,\n"
            "    \"probability\": %.2f,\n"
            "    \"admit_rejected\": %d,\n"
            "    \"replay_identical\": %s,\n"
            "    \"quarantined_served_ok\": %s\n  }",
            static_cast<unsigned long long>(faults->plan.seed),
            faults->plan.probability, faults->admit_rejected,
            faults->replay_identical ? "true" : "false",
            faults->quarantined_served_ok ? "true" : "false");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    bool with_faults = false;
    uint64_t fault_seed = 2022;
    const char *plan_save = nullptr;
    const char *plan_load = nullptr;
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            cfg.threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--plan-save") == 0
                 && i + 1 < argc)
            plan_save = argv[++i];
        else if (std::strcmp(argv[i], "--plan-load") == 0
                 && i + 1 < argc)
            plan_load = argv[++i];
        else if (std::strcmp(argv[i], "--faults") == 0) {
            with_faults = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                fault_seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: bench_serve [--quick|--smoke] "
                         "[--threads N] [--faults [seed]] "
                         "[--plan-save PATH] [--plan-load PATH]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_serve: CompileService under open-loop "
                "load ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");

    if (smoke) {
        cfg.devices = 2;
        cfg.requests = 30;
        cfg.mean_interarrival_ms = 2.0;
    } else if (quick) {
        cfg.devices = 2;
        cfg.requests = 80;
        cfg.mean_interarrival_ms = 2.0;
    }

    const CompileServiceOptions sopts = benchServiceOptions(cfg);
    CompileService service(sopts);
    std::printf("[start] calibrating %d devices...\n", cfg.devices);
    service.start(benchFleet(cfg.devices));

    std::printf("[open-loop] %d requests, mean interarrival %.1f ms "
                "(%.0f rps offered)...\n",
                cfg.requests, cfg.mean_interarrival_ms,
                1000.0 / cfg.mean_interarrival_ms);
    const OpenLoopResult open = runOpenLoop(service, cfg);

    std::printf("[determinism] serial vs concurrent shuffled "
                "replays...\n");
    const DeterminismResult det = runDeterminism(service, cfg);

    std::printf("[epoch-swap] retune mid-stream, drain, replay...\n");
    const EpochSwapResult swap = runEpochSwap(service, cfg);

    const int zipf_requests = smoke ? 60 : quick ? 150 : 400;
    std::printf("[zipf] %d requests over %d shapes, plan cache off "
                "vs on...\n",
                zipf_requests, static_cast<int>(kZipfShapes));
    const ZipfResult zipf =
        runZipf(cfg, zipf_requests, plan_load, plan_save);

    FaultBench fault_bench;
    if (with_faults) {
        std::printf("[faults] serve.admit replay pair (seed %llu) + "
                    "full quarantine drill...\n",
                    static_cast<unsigned long long>(fault_seed));
        fault_bench = runFaulted(service, cfg, fault_seed);
    }
    service.stop();

    std::printf("[admission] 1-deep queue, burst of 24...\n");
    const AdmissionResult adm = runAdmissionBurst(cfg);

    std::printf("\nrequests: %d (all ok: %s)\n", open.requests,
                open.all_ok ? "yes" : "NO");
    std::printf("throughput: %.1f rps (offered %.0f)\n",
                open.throughput_rps, open.offered_rps);
    std::printf("latency p50/p95/p99: %.2f / %.2f / %.2f ms\n",
                open.p50_ms, open.p95_ms, open.p99_ms);
    std::printf("queue high-water %llu, dispatch batches %llu\n",
                static_cast<unsigned long long>(open.max_queue_depth),
                static_cast<unsigned long long>(open.batches));
    std::printf("admission burst %d: served %d, rejected %d, all "
                "resolved: %s\n", adm.burst, adm.served, adm.rejected,
                adm.all_resolved ? "yes" : "NO");
    std::printf("determinism (%d requests x %d interleavings): %s\n",
                det.requests, det.interleavings,
                det.bit_identical ? "bit-identical" : "MISMATCH");
    std::printf("epoch swap %llu -> %llu: served during swap: %s, "
                "digests changed: %s\n",
                static_cast<unsigned long long>(swap.old_epoch),
                static_cast<unsigned long long>(swap.new_epoch),
                swap.served_during_swap ? "yes" : "NO",
                swap.digest_changed ? "yes" : "NO");
    std::printf("zipf p50 off/on: %.3f / %.4f ms (%.0fx), digests: "
                "%s, memo/replay/miss: %llu/%llu/%llu, loaded %llu\n",
                zipf.p50_off_ms, zipf.p50_on_ms, zipf.speedup,
                zipf.digests_match ? "bit-identical" : "MISMATCH",
                static_cast<unsigned long long>(zipf.memo_hits),
                static_cast<unsigned long long>(zipf.replay_hits),
                static_cast<unsigned long long>(zipf.plan_misses),
                static_cast<unsigned long long>(zipf.plans_loaded));
    if (with_faults) {
        std::printf("[faults] admit rejected %d/%d; replay: %s; "
                    "quarantined fleet served ok: %s\n",
                    fault_bench.admit_rejected, det.requests,
                    fault_bench.replay_identical ? "bit-identical"
                                                 : "MISMATCH",
                    fault_bench.quarantined_served_ok ? "yes" : "NO");
    }

    std::printf("\n--- metrics registry (process-wide) ---\n%s",
                metricsSnapshot().text().c_str());

    writeJson("BENCH_serve.json", quick, smoke, cfg, sopts, open, adm,
              det, swap, zipf, with_faults ? &fault_bench : nullptr);

    bool ok = open.all_ok && det.bit_identical
              && swap.served_during_swap && swap.digest_changed
              && adm.all_resolved && adm.rejected >= 1
              && adm.served >= 1;
    // The Zipf sub-suite gates through the exit code too: plan-hit
    // and plan-miss responses bit-identical, both tiers exercised,
    // and the p50 speedup at or above the committed 10x floor.
    if (!(zipf.all_ok && zipf.digests_match && zipf.speedup >= 10.0
          && zipf.memo_hits >= 1 && zipf.replay_hits >= 1
          && zipf.snapshot_saved
          && (plan_load == nullptr || zipf.plans_loaded >= 1))) {
        std::printf("FAIL: plan-cache Zipf contract violated\n");
        ok = false;
    }
    if (with_faults
        && !(fault_bench.replay_identical
             && fault_bench.quarantined_served_ok)) {
        std::printf("FAIL: degraded-mode serving contract violated\n");
        ok = false;
    }
    if (!ok)
        std::printf("FAIL: serving contract violated\n");
    return ok ? 0 : 1;
}
