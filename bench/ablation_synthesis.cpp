/**
 * @file
 * Ablation of the Section VII claim: starting the numerical gate
 * synthesis at the analytically predicted depth (Theorem 5.1 +
 * Section V regions) speeds up compilation versus NuOp's escalate-
 * from-one-layer search, with identical results.
 *
 * Uses google-benchmark for the timing comparison.
 */

#include <benchmark/benchmark.h>

#include "synth/numerical.hpp"
#include "weyl/gates.hpp"

using namespace qbasis;

namespace {

const Mat4 &
nonstandardBasis()
{
    static const Mat4 basis = canonicalGate(0.26, 0.24, 0.03);
    return basis;
}

void
BM_SynthesizeSwapWithDepthPrediction(benchmark::State &state)
{
    SynthOptions opts;
    opts.use_depth_prediction = true;
    for (auto _ : state) {
        const TwoQubitDecomposition d =
            synthesizeGate(swapGate(), nonstandardBasis(), opts);
        benchmark::DoNotOptimize(d.infidelity);
        if (d.infidelity > 1e-7)
            state.SkipWithError("synthesis failed");
    }
}
BENCHMARK(BM_SynthesizeSwapWithDepthPrediction)
    ->Unit(benchmark::kMillisecond);

void
BM_SynthesizeSwapEscalateFromOne(benchmark::State &state)
{
    SynthOptions opts;
    opts.use_depth_prediction = false;
    for (auto _ : state) {
        const TwoQubitDecomposition d =
            synthesizeGate(swapGate(), nonstandardBasis(), opts);
        benchmark::DoNotOptimize(d.infidelity);
        if (d.infidelity > 1e-7)
            state.SkipWithError("synthesis failed");
    }
}
BENCHMARK(BM_SynthesizeSwapEscalateFromOne)
    ->Unit(benchmark::kMillisecond);

void
BM_SynthesizeCnotWithDepthPrediction(benchmark::State &state)
{
    SynthOptions opts;
    opts.use_depth_prediction = true;
    for (auto _ : state) {
        const TwoQubitDecomposition d =
            synthesizeGate(cnotGate(), nonstandardBasis(), opts);
        benchmark::DoNotOptimize(d.infidelity);
    }
}
BENCHMARK(BM_SynthesizeCnotWithDepthPrediction)
    ->Unit(benchmark::kMillisecond);

void
BM_SynthesizeCnotEscalateFromOne(benchmark::State &state)
{
    SynthOptions opts;
    opts.use_depth_prediction = false;
    for (auto _ : state) {
        const TwoQubitDecomposition d =
            synthesizeGate(cnotGate(), nonstandardBasis(), opts);
        benchmark::DoNotOptimize(d.infidelity);
    }
}
BENCHMARK(BM_SynthesizeCnotEscalateFromOne)
    ->Unit(benchmark::kMillisecond);

void
BM_KakDecomposition(benchmark::State &state)
{
    const Mat4 u = canonicalGate(0.31, 0.17, 0.09);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cartanCoords(u));
    }
}
BENCHMARK(BM_KakDecomposition)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
