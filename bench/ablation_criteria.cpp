/**
 * @file
 * Ablation of the selection criterion (Section V-E): compare the
 * basis gates and synthesized SWAP/CNOT costs produced by
 * Criterion 1, Criterion 2, the perfect-entangler criterion, and
 * PE+SWAP3, on a sample of device edges at the strong amplitude.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;
using namespace qbasis::bench;

int
main()
{
    std::printf("=== Criterion ablation (Section V-E) ===\n\n");
    setLogLevel(LogLevel::Warn);

    GridDeviceParams dp = paperDeviceParams();
    const GridDevice device{dp};

    DeviceCalibrationOptions copts = calibrationOptions(30.0);
    if (copts.edge_limit < 0)
        copts.edge_limit = 12; // a representative sample suffices

    const SelectionCriterion criteria[] = {
        SelectionCriterion::Criterion1,
        SelectionCriterion::Criterion2,
        SelectionCriterion::PerfectEntangler,
        SelectionCriterion::PeAndSwap3,
    };

    TextTable table({"criterion", "basis (ns)", "SWAP (ns)",
                     "CNOT (ns)", "SWAP layers", "CNOT layers",
                     "min ep"});
    for (SelectionCriterion crit : criteria) {
        const CalibratedBasisSet set =
            calibrateDevice(device, kStrongXi, crit,
                            criterionName(crit), copts);
        DecompositionCache cache;
        const GateSetSummary s = summarizeGateSet(
            device, set, cache, SynthOptions{}, kOneQubitNs,
            kCoherenceNs);
        double min_ep = 1.0;
        for (int e = 0; e < copts.edge_limit; ++e) {
            min_ep = std::min(
                min_ep, entanglingPower(set.edges[e].gate.coords));
        }
        table.addRow({criterionName(crit),
                      fmtFixed(s.avg_basis_ns, 2),
                      fmtFixed(s.avg_swap_ns, 1),
                      fmtFixed(s.avg_cnot_ns, 1),
                      fmtFixed(s.avg_swap_layers, 2),
                      fmtFixed(s.avg_cnot_layers, 2),
                      fmtFixed(min_ep, 4)});
    }
    table.print();

    std::printf("\nreading: Criterion 1 gives the fastest SWAP; "
                "Criterion 2 trades a slightly slower basis gate "
                "for 2-layer CNOTs (the paper's Table I pattern); "
                "PE-only selects faster gates that may need deeper "
                "SWAP/CNOT circuits.\n");
    return 0;
}
