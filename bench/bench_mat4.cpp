/**
 * @file
 * Mat4 kernel microbenchmark: times the dispatched SIMD backend
 * against the scalar reference on the exact kernels the synthesis
 * objective hits per restart (multiply, fused kron products,
 * adjoint-multiply, adjoint-trace reduction, fused layer steps) and
 * verifies their bit-identity, emitting BENCH_mat4.json for the CI
 * bench gate (scripts/check_bench.py).
 *
 * Usage: bench_mat4 [--quick|--smoke|--backend]
 *
 *   --quick    CI-sized run (fewer repetitions)
 *   --smoke    tiny equality-only pass (sanitize jobs; no timing
 *              floors, still writes the JSON with match flags)
 *   --backend  print the dispatch banner and exit
 *
 * JSON schema (BENCH_mat4.json):
 * {
 *   "quick": bool, "smoke": bool,
 *   "backend": "scalar"|"avx2",
 *   "simd_available": bool, "host_avx2": bool, "host_fma": bool,
 *   "kernels": { "<name>": {
 *       "scalar_ns": double, "simd_ns": double,
 *       "speedup": double, "match": bool } },
 *   "speedup_geomean": double,
 *   "kernels_match": bool
 * }
 *
 * When the SIMD backend is unavailable (non-AVX2 host or
 * QBASIS_SIMD=OFF build), the timing loop runs scalar-only, speedups
 * report as 1.0, and the bench gate skips the speedup floors
 * (scripts/check_bench.py keys off "simd_available").
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "linalg/mat4.hpp"
#include "linalg/mat4_kernels.hpp"
#include "linalg/random.hpp"
#include "util/rng.hpp"

using namespace qbasis;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Shared operand set: the same matrices feed both backends. */
struct Workset
{
    std::vector<Mat4> a, b;
    std::vector<Mat2> u1, u0;
    std::vector<Mat4> out, out2;
    std::vector<Mat2> s;
    std::vector<Complex> tr;

    explicit Workset(size_t n) : out(n), out2(n), s(n), tr(n)
    {
        Rng rng(0xBE9C4ull);
        a.reserve(n);
        b.reserve(n);
        u1.reserve(n);
        u0.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            a.push_back(randomUnitary4(rng));
            b.push_back(randomUnitary4(rng));
            const Mat4 l = randomLocal4(rng);
            Mat2 m1, m0;
            for (int r = 0; r < 2; ++r) {
                for (int c = 0; c < 2; ++c) {
                    m1(r, c) = l(r, c);
                    m0(r, c) = l(2 + r, 2 + c);
                }
            }
            u1.push_back(m1);
            u0.push_back(m0);
        }
    }
};

using KernelPass = void (*)(const Mat4KernelTable &, Workset &);

struct KernelSpec
{
    const char *name;
    KernelPass pass;
};

void
passMatmul(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.matmul(w.a[i].data(), w.b[i].data(), w.out[i].data());
}

void
passAdjointMul(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.adjoint_mul(w.a[i].data(), w.b[i].data(),
                      w.out[i].data());
}

void
passKronMulLeft(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.kron_mul_left(w.u1[i].data(), w.u0[i].data(),
                        w.a[i].data(), w.out[i].data());
}

void
passMulKronRight(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.mul_kron_right(w.a[i].data(), w.u1[i].data(),
                         w.u0[i].data(), w.out[i].data());
}

void
passAdjointTraceDot(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        w.tr[i] = t.adjoint_trace_dot(w.a[i].data(),
                                      w.b[i].data());
}

void
passKron2(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.kron2(w.u1[i].data(), w.u0[i].data(), w.out[i].data());
}

void
passKronTraceQ1(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.kron_trace_q1(w.a[i].data(), w.u0[i].data(),
                        w.s[i].data());
}

void
passKronTraceQ0(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.kron_trace_q0(w.a[i].data(), w.u1[i].data(),
                        w.s[i].data());
}

void
passLayerFwd(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.layer_fwd(w.a[i].data(), w.u1[i].data(), w.u0[i].data(),
                    w.b[i].data(), w.out[i].data(),
                    w.out2[i].data());
}

void
passLayerBwd(const Mat4KernelTable &t, Workset &w)
{
    for (size_t i = 0; i < w.a.size(); ++i)
        t.layer_bwd(w.a[i].data(), w.u1[i].data(), w.u0[i].data(),
                    w.b[i].data(), w.out[i].data());
}

// Every entry point of the dispatch table: the --smoke equality
// pass (and the CI mat4 gate) must cover the full kernel surface.
const KernelSpec kKernels[] = {
    {"matmul", passMatmul},
    {"adjoint_mul", passAdjointMul},
    {"kron2", passKron2},
    {"kron_mul_left", passKronMulLeft},
    {"mul_kron_right", passMulKronRight},
    {"adjoint_trace_dot", passAdjointTraceDot},
    {"kron_trace_q1", passKronTraceQ1},
    {"kron_trace_q0", passKronTraceQ0},
    {"layer_fwd", passLayerFwd},
    {"layer_bwd", passLayerBwd},
};

/** Best-of-`rounds` per-call time in nanoseconds. */
double
timeKernel(const Mat4KernelTable &t, const KernelSpec &spec,
           Workset &w, int reps, int rounds)
{
    double best_ms = 1e300;
    for (int round = 0; round < rounds; ++round) {
        const double t0 = nowMs();
        for (int r = 0; r < reps; ++r)
            spec.pass(t, w);
        const double elapsed = nowMs() - t0;
        if (elapsed < best_ms)
            best_ms = elapsed;
    }
    const double calls =
        static_cast<double>(reps) * static_cast<double>(w.a.size());
    return best_ms * 1e6 / calls;
}

/** Bitwise comparison of the outputs both backends produced. */
bool
outputsMatch(const KernelSpec &spec, const Mat4KernelTable &s,
             const Mat4KernelTable &v, Workset &ws, Workset &wv)
{
    spec.pass(s, ws);
    spec.pass(v, wv);
    for (size_t i = 0; i < ws.out.size(); ++i) {
        if (std::memcmp(ws.out[i].data(), wv.out[i].data(),
                        16 * sizeof(Complex)) != 0
            || std::memcmp(ws.out2[i].data(), wv.out2[i].data(),
                           16 * sizeof(Complex)) != 0
            || std::memcmp(ws.s[i].data(), wv.s[i].data(),
                           4 * sizeof(Complex)) != 0
            || std::memcmp(&ws.tr[i], &wv.tr[i], sizeof(Complex))
                   != 0)
            return false;
    }
    return true;
}

struct KernelResult
{
    std::string name;
    double scalar_ns = 0.0;
    double simd_ns = 0.0;
    bool match = true;

    double
    speedup() const
    {
        return simd_ns > 0.0 ? scalar_ns / simd_ns : 1.0;
    }
};

void
writeJson(const char *path, bool quick, bool smoke, bool simd,
          const std::vector<KernelResult> &results, double geomean,
          bool all_match)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_mat4: cannot write %s\n", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
        "  \"backend\": \"%s\",\n  \"simd_available\": %s,\n"
        "  \"host_avx2\": %s,\n  \"host_fma\": %s,\n"
        "  \"kernels\": {\n",
        quick ? "true" : "false", smoke ? "true" : "false",
        mat4BackendName(activeMat4Backend()),
        simd ? "true" : "false",
        mat4HostHasAvx2() ? "true" : "false",
        mat4HostHasFma() ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
        const KernelResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"scalar_ns\": %.2f,\n"
                     "      \"simd_ns\": %.2f,\n"
                     "      \"speedup\": %.3f,\n"
                     "      \"match\": %s\n"
                     "    }%s\n",
                     r.name.c_str(), r.scalar_ns, r.simd_ns,
                     r.speedup(), r.match ? "true" : "false",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  },\n  \"speedup_geomean\": %.3f,\n"
                 "  \"kernels_match\": %s\n}\n",
                 geomean, all_match ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--backend") == 0) {
            std::printf("mat4 backend: %s\n",
                        mat4BackendBanner().c_str());
            return 0;
        } else {
            std::fprintf(
                stderr,
                "usage: bench_mat4 [--quick|--smoke|--backend]\n");
            return 2;
        }
    }

    std::printf("=== bench_mat4: SIMD Mat4 kernel layer ===\n");
    std::printf("mat4 backend: %s\n", mat4BackendBanner().c_str());
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");

    const Mat4KernelTable *scalar =
        mat4BackendTable(Mat4Backend::Scalar);
    const Mat4KernelTable *simd =
        mat4BackendTable(Mat4Backend::Avx2);
    const bool simd_available = simd != nullptr;

    const size_t n = smoke ? 64 : 1024;
    const int reps = smoke ? 2 : quick ? 200 : 1000;
    const int rounds = smoke ? 1 : 3;
    Workset ws(n), wv(n);

    std::vector<KernelResult> results;
    bool all_match = true;
    double log_sum = 0.0;
    for (const KernelSpec &spec : kKernels) {
        KernelResult r;
        r.name = spec.name;
        if (simd_available)
            r.match = outputsMatch(spec, *scalar, *simd, ws, wv);
        all_match = all_match && r.match;
        if (!smoke) {
            r.scalar_ns = timeKernel(*scalar, spec, ws, reps, rounds);
            r.simd_ns = simd_available
                            ? timeKernel(*simd, spec, wv, reps,
                                         rounds)
                            : r.scalar_ns;
        }
        log_sum += std::log(r.speedup() > 0.0 ? r.speedup() : 1.0);
        results.push_back(std::move(r));
    }
    const double geomean = std::exp(
        log_sum / static_cast<double>(std::size(kKernels)));

    std::printf("\n%-18s %11s %11s %9s %6s\n", "kernel",
                "scalar (ns)", "simd (ns)", "speedup", "match");
    for (const KernelResult &r : results) {
        std::printf("%-18s %11.1f %11.1f %8.2fx %6s\n",
                    r.name.c_str(), r.scalar_ns, r.simd_ns,
                    r.speedup(), r.match ? "yes" : "NO");
    }
    if (!smoke)
        std::printf("geomean speedup: %.2fx\n", geomean);

    writeJson("BENCH_mat4.json", quick, smoke, simd_available,
              results, geomean, all_match);

    if (!all_match) {
        std::printf("FAIL: scalar and SIMD backends disagree\n");
        return 1;
    }
    return 0;
}
