/**
 * @file
 * Reproduces Fig. 5: stability of the Cartan trajectories over
 * entangling pulse drive amplitude and over (simulated) days.
 *
 * The paper observed that doubling the drive amplitude doubles the
 * trajectory speed while preserving its shape, and that the
 * trajectories stay qualitatively similar over a multi-day window.
 * Here the same unit cell is simulated at xi = 0.005 and 0.01, and
 * day-scale drift is applied to the device parameters between
 * repeated measurements.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "calib/drift.hpp"
#include "sim/propagator.hpp"
#include "util/table.hpp"

using namespace qbasis;
using namespace qbasis::bench;

namespace {

/** Max coordinate distance between trajectories sampled on a common
 *  scaled time axis (shape-similarity metric). */
double
shapeDistance(const Trajectory &slow, const Trajectory &fast,
              double speed_ratio)
{
    double worst = 0.0;
    for (size_t i = 0; i < fast.size(); ++i) {
        const double t_slow = fast.at(i).duration * speed_ratio;
        // Nearest slow sample.
        size_t j = static_cast<size_t>(t_slow + 0.5);
        if (j >= slow.size())
            break;
        worst = std::max(worst, fast.at(i).coords.distance(
                                    slow.at(j).coords));
    }
    return worst;
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: trajectory stability ===\n\n");

    const GridDevice device{paperDeviceParams()};
    const PairDeviceParams params = device.edgeParams(0);

    // --- amplitude doubling ---
    const PairSimulator sim(params, device.couplerOmegaMax());
    const double wd1 = sim.calibrateDriveFrequency(0.005);
    const double wd2 = sim.calibrateDriveFrequency(0.010);
    const Trajectory t1 = sim.simulateTrajectory(0.005, wd1, 100.0);
    const Trajectory t2 = sim.simulateTrajectory(0.010, wd2, 50.0);

    TextTable table({"t (ns) @ xi=0.005", "coords",
                     "t (ns) @ xi=0.01", "coords (2x speed)"});
    for (size_t i = 10; i < t2.size(); i += 10) {
        const size_t j = 2 * i;
        if (j >= t1.size())
            break;
        table.addRow({fmtFixed(t1.at(j).duration, 0),
                      t1.at(j).coords.str(3),
                      fmtFixed(t2.at(i).duration, 0),
                      t2.at(i).coords.str(3)});
    }
    table.print();
    std::printf("\nshape distance under 2x time rescale: %.4f "
                "(qualitatively similar trajectories, paper "
                "Fig. 5)\n\n", shapeDistance(t1, t2, 2.0));

    // --- day-scale drift ---
    std::printf("day-to-day stability under parameter drift:\n");
    Rng rng(55);
    DriftModel drift;
    TextTable days({"day", "coords @ 20 ns", "distance to day 0"});
    PairDeviceParams drifting = params;
    CartanCoords day0;
    for (int day = 0; day <= 4; ++day) {
        const PairSimulator day_sim(drifting,
                                    device.couplerOmegaMax());
        const double wd = day_sim.calibrateDriveFrequency(0.01);
        const Trajectory traj =
            day_sim.simulateTrajectory(0.01, wd, 21.0);
        const CartanCoords c = traj.at(20).coords;
        if (day == 0)
            day0 = c;
        days.addRow({strformat("%d", day), c.str(4),
                     fmtFixed(c.distance(day0), 5)});
        drifting = driftParams(drifting, drift, rng);
    }
    days.print();
    std::printf("\ntrajectories stay qualitatively similar across "
                "days; the initial tuneup's duration guess remains "
                "valid (Section VI).\n");
    return 0;
}
