/**
 * @file
 * Reproduces Table II: coherence-limited fidelities of the benchmark
 * circuits (QFT, BV, Cuccaro adder, QAOA) compiled onto the 10x10
 * grid with the three basis-gate sets (baseline, Criterion 1,
 * Criterion 2).
 *
 * Pipeline per cell, matching Section VIII-C: SABRE layout +
 * routing, 1Q merging, per-edge basis translation via the cached
 * numerical synthesizer, ASAP scheduling, and the per-qubit
 * e^{-t/T} fidelity model with T = 80 us and 20 ns 1Q gates.
 *
 * Expected shapes: Criterion 2 >= Criterion 1 > baseline on every
 * row, with the gap growing exponentially in benchmark size.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "apps/bv.hpp"
#include "apps/cuccaro.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "bench_common.hpp"
#include "serve/api.hpp"
#include "synth/engine.hpp"
#include "util/table.hpp"

using namespace qbasis;
using namespace qbasis::bench;

namespace {

struct BenchRow
{
    std::string name;
    Circuit circuit;
};

std::vector<BenchRow>
paperBenchmarks()
{
    std::vector<BenchRow> rows;
    rows.push_back({"qft 10", qftCircuit(10)});
    rows.push_back({"qft 20", qftCircuit(20)});
    for (int n = 9; n <= 99; n += 10)
        rows.push_back({strformat("bv %d", n), bvAllOnesCircuit(n)});
    rows.push_back({"cuccaro 10", cuccaroAdderByTotalQubits(10)});
    rows.push_back({"cuccaro 20", cuccaroAdderByTotalQubits(20)});
    for (int n = 10; n <= 40; n += 10) {
        rows.push_back({strformat("qaoa 0.1 %d", n),
                        qaoaErdosRenyiCircuit(n, 0.1)});
    }
    rows.push_back({"qaoa 0.33 10", qaoaErdosRenyiCircuit(10, 0.33)});
    rows.push_back({"qaoa 0.33 20", qaoaErdosRenyiCircuit(20, 0.33)});
    return rows;
}

} // namespace

int
main()
{
    std::printf("=== Table II: compiled benchmark fidelities ===\n");
    const GridDevice device{paperDeviceParams()};
    std::printf("device: %dx%d grid, %zu edges; T = 80 us, 1Q = 20 "
                "ns\n\n", device.rows(), device.cols(),
                device.coupling().edges().size());

    setLogLevel(LogLevel::Warn);

    const CalibratedBasisSet baseline = calibrateDevice(
        device, kBaselineXi, SelectionCriterion::Criterion1,
        "baseline", calibrationOptions(130.0));
    const CalibratedBasisSet crit1 = calibrateDevice(
        device, kStrongXi, SelectionCriterion::Criterion1,
        "criterion1", calibrationOptions(30.0));
    const CalibratedBasisSet crit2 = calibrateDevice(
        device, kStrongXi, SelectionCriterion::Criterion2,
        "criterion2", calibrationOptions(30.0));

    DecompositionCache cache_b, cache_1, cache_2;
    const TranspileOptions topts;

    TextTable table({"benchmark", "baseline", "criterion 1",
                     "criterion 2", "C2 makespan (us)", "swaps"});
    const std::vector<BenchRow> rows = paperBenchmarks();
    for (const BenchRow &row : rows) {
        if (row.circuit.numQubits() > device.numQubits()) {
            std::printf("  [%s skipped: needs %d qubits, device has "
                        "%d]\n", row.name.c_str(),
                        row.circuit.numQubits(), device.numQubits());
            continue;
        }
        CompileRequest req(0, 0, row.name, row.circuit);
        req.options.transpile = topts;
        req.options.t_1q_ns = kOneQubitNs;
        req.options.t_coherence_ns = kCoherenceNs;
        const CompiledCircuitResult rb =
            runCompile(device, baseline,
                       SynthRoute::local(&cache_b), req)
                .result;
        const CompiledCircuitResult r1 =
            runCompile(device, crit1, SynthRoute::local(&cache_1),
                       req)
                .result;
        const CompiledCircuitResult r2 =
            runCompile(device, crit2, SynthRoute::local(&cache_2),
                       req)
                .result;
        table.addRow({row.name, fmtPercent(rb.fidelity, 3),
                      fmtPercent(r1.fidelity, 3),
                      fmtPercent(r2.fidelity, 3),
                      fmtFixed(r2.makespan_ns / 1e3, 2),
                      strformat("%zu", r2.swaps_inserted)});
        std::printf("  [%s done]\n", row.name.c_str());
    }
    std::printf("\n");
    table.print();

    std::printf("\npaper Table II reference (baseline / C1 / C2):\n"
                "  qft 10: 58.2/65.6/70.8%%   qft 20: "
                "1.33/6.03/9.94%%\n"
                "  bv 9: 88.7/94.4/95.3%%     bv 99: "
                "0.06/6.26/7.97%%\n"
                "  cuccaro 10: 21.5/46.3/52.6%%  cuccaro 20: "
                "0.80/7.68/11.8%%\n"
                "  qaoa 0.1 10: 97.2/98.5/98.8%%  qaoa 0.1 40: "
                "0.006/5.59/8.56%%\n"
                "  qaoa 0.33 10: 66.1/81.0/84.3%%  qaoa 0.33 20: "
                "15.0/42.2/48.2%%\n");
    auto hit_rate = [](const DecompositionCache &c) {
        const double total =
            static_cast<double>(c.hits() + c.misses());
        return total > 0.0 ? 100.0 * static_cast<double>(c.hits())
                                 / total
                           : 0.0;
    };
    std::printf("\nsynthesis cache (Weyl classes): baseline %zu "
                "entries (%llu hits, %.1f%%), C1 %zu (%llu, %.1f%%), "
                "C2 %zu (%llu, %.1f%%) on %d engine threads\n",
                cache_b.size(),
                static_cast<unsigned long long>(cache_b.hits()),
                hit_rate(cache_b), cache_1.size(),
                static_cast<unsigned long long>(cache_1.hits()),
                hit_rate(cache_1), cache_2.size(),
                static_cast<unsigned long long>(cache_2.hits()),
                hit_rate(cache_2),
                SynthEngine::shared().threadCount());
    return 0;
}
