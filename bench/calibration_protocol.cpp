/**
 * @file
 * Demonstrates the Section VI calibration protocol: an initial
 * tuneup (coarse pulse calibration, QPT along the trajectory,
 * candidate filtering via the Section V regions, GST refinement)
 * followed by daily retuning under slow parameter drift.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "calib/drift.hpp"
#include "calib/protocol.hpp"
#include "core/criteria.hpp"
#include "util/table.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;
using namespace qbasis::bench;

int
main()
{
    std::printf("=== Section VI: calibration protocol ===\n\n");
    setLogLevel(LogLevel::Warn);

    const GridDevice device{paperDeviceParams()};
    const PairDeviceParams params = device.edgeParams(0);
    const PairSimulator sim(params, device.couplerOmegaMax());

    Rng rng(2022);
    TuneupOptions opts;
    opts.xi = kStrongXi;
    opts.max_ns = 25.0;
    opts.qpt.shots = 1000;
    opts.qpt.spam_error = 0.02;
    opts.gst.error_floor = 1e-5;

    std::printf("initial tuneup (QPT shots: %d, SPAM %.0f%%):\n",
                opts.qpt.shots, 100 * opts.qpt.spam_error);
    const TuneupResult tuneup = initialTuneup(
        sim, criterionPredicate(SelectionCriterion::Criterion1),
        opts, rng);
    if (!tuneup.success) {
        std::printf("tuneup failed\n");
        return 1;
    }
    std::printf("  drive frequency: %.4f GHz\n",
                tuneup.omega_d / kTwoPi);
    std::printf("  QPT candidates after Section V filtering: %zu "
                "(halo reflects QPT imprecision)\n",
                tuneup.candidates.size());
    std::printf("  chosen basis gate: %.0f ns at %s\n",
                tuneup.duration_ns,
                cartanCoords(tuneup.gate).str(4).c_str());

    std::printf("\ndaily retuning under drift:\n");
    TextTable table({"day", "drive (GHz)", "gate shift (trace "
                     "infidelity)", "criterion still met"});
    DriftModel drift;
    PairDeviceParams drifting = params;
    for (int day = 1; day <= 3; ++day) {
        drifting = driftParams(drifting, drift, rng);
        const PairSimulator day_sim(drifting,
                                    device.couplerOmegaMax());
        const RetuneResult r =
            retune(day_sim, tuneup, opts.gst, rng);
        if (!r.success) {
            std::printf("retune failed: %s\n", r.error.c_str());
            return 1;
        }
        const bool ok = criterionSatisfied(
            SelectionCriterion::Criterion1, cartanCoords(r.gate),
            1e-6);
        table.addRow({strformat("%d", day),
                      fmtFixed(r.omega_d / kTwoPi, 4),
                      strformat("%.2e", r.gate_shift),
                      ok ? "yes" : "NO (schedule initial tuneup)"});
    }
    table.print();

    std::printf("\nretuning repeats only the coarse frequency "
                "calibration and a GST refresh (minutes), not the "
                "full trajectory QPT (the paper's monthly initial "
                "tuneup).\n");
    std::printf("parallel calibration: an edge-coloring of the grid "
                "runs all edges in 4 rounds regardless of device "
                "size (Section VI scalability).\n");
    return 0;
}
