/**
 * @file
 * Reproduces Table I: average duration and coherence-limited
 * fidelity of the 2Q basis gates and of the synthesized SWAP and
 * CNOT gates, for
 *   - Baseline:    standard trajectory at xi = 0.005 (sqiSW-like),
 *   - Criterion 1: nonstandard trajectory at xi = 0.04, fastest
 *                  SWAP-in-3 gate,
 *   - Criterion 2: same trajectory, fastest SWAP-in-3 AND CNOT-in-2
 *                  gate.
 *
 * Also reports the Section VIII-D single-qubit duration share and
 * prints an example synthesized decomposition (Fig. 3 shapes).
 *
 * Expected shapes (not absolute numbers): nonstandard basis gates
 * ~8x faster; SWAP ~3x and CNOT ~2-2.8x faster; Criterion 2's CNOT
 * faster than Criterion 1's at a slightly slower SWAP.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "synth/engine.hpp"
#include "util/table.hpp"
#include "weyl/gates.hpp"

using namespace qbasis;
using namespace qbasis::bench;

int
main()
{
    std::printf("=== Table I: basis / SWAP / CNOT gate summary ===\n");
    const GridDevice device{paperDeviceParams()};
    std::printf("device: %dx%d grid, %zu edges\n\n", device.rows(),
                device.cols(), device.coupling().edges().size());

    setLogLevel(LogLevel::Warn);

    const CalibratedBasisSet baseline = calibrateDevice(
        device, kBaselineXi, SelectionCriterion::Criterion1,
        "baseline", calibrationOptions(130.0));
    const CalibratedBasisSet crit1 = calibrateDevice(
        device, kStrongXi, SelectionCriterion::Criterion1,
        "criterion1", calibrationOptions(30.0));
    const CalibratedBasisSet crit2 = calibrateDevice(
        device, kStrongXi, SelectionCriterion::Criterion2,
        "criterion2", calibrationOptions(30.0));

    const SynthOptions synth;
    DecompositionCache cache_b, cache_1, cache_2;
    const auto synth_t0 = std::chrono::steady_clock::now();
    const GateSetSummary sb =
        summarizeGateSet(device, baseline, cache_b, synth,
                         kOneQubitNs, kCoherenceNs);
    const GateSetSummary s1 = summarizeGateSet(
        device, crit1, cache_1, synth, kOneQubitNs, kCoherenceNs);
    const GateSetSummary s2 = summarizeGateSet(
        device, crit2, cache_2, synth, kOneQubitNs, kCoherenceNs);
    const double synth_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - synth_t0)
            .count();
    std::printf("synthesis sweep: %.1f ms on %d engine threads, "
                "%zu Weyl classes for %zu edge summaries\n",
                synth_ms, SynthEngine::shared().threadCount(),
                cache_b.size() + cache_1.size() + cache_2.size(),
                3 * device.coupling().edges().size());

    TextTable table({"basis set", "basis (ns / fid)",
                     "SWAP (ns / fid)", "CNOT (ns / fid)"});
    auto row = [&table](const GateSetSummary &s) {
        table.addRow(
            {s.label,
             strformat("%.2f ns / %.3f%%", s.avg_basis_ns,
                       100.0 * s.avg_basis_fidelity),
             strformat("%.1f ns / %.3f%%", s.avg_swap_ns,
                       100.0 * s.avg_swap_fidelity),
             strformat("%.1f ns / %.3f%%", s.avg_cnot_ns,
                       100.0 * s.avg_cnot_fidelity)});
    };
    row(sb);
    row(s1);
    row(s2);
    table.print();

    std::printf("\npaper Table I reference:\n"
                "  Baseline    83.04 ns/99.884%%  329.1 ns/99.541%%  "
                "226.1 ns/99.684%%\n"
                "  Criterion 1 10.15 ns/99.986%%  110.5 ns/99.845%%  "
                "110.5 ns/99.845%%\n"
                "  Criterion 2 10.76 ns/99.985%%  112.3 ns/99.843%%  "
                "81.51 ns/99.886%%\n");

    std::printf("\nspeedups vs baseline (paper: ~8x basis, 3.0x/2.9x"
                " SWAP, 2.0x/2.8x CNOT):\n");
    TextTable speed({"basis set", "basis", "SWAP", "CNOT",
                     "SWAP layers", "CNOT layers", "1Q share of "
                     "SWAP"});
    auto srow = [&](const GateSetSummary &s) {
        speed.addRow({s.label,
                      strformat("%.2fx",
                                sb.avg_basis_ns / s.avg_basis_ns),
                      strformat("%.2fx",
                                sb.avg_swap_ns / s.avg_swap_ns),
                      strformat("%.2fx",
                                sb.avg_cnot_ns / s.avg_cnot_ns),
                      fmtFixed(s.avg_swap_layers, 2),
                      fmtFixed(s.avg_cnot_layers, 2),
                      fmtPercent(s.one_q_share_swap, 3)});
    };
    srow(sb);
    srow(s1);
    srow(s2);
    speed.print();
    std::printf("\npaper Section VIII-D: 1Q gates take ~24%% of the "
                "compiled SWAP duration for the baseline and ~72%% "
                "for the nonstandard sets.\n");
    std::printf("max decomposition infidelity across all edges: "
                "%.2e (baseline) / %.2e (C1) / %.2e (C2) -- "
                "negligible vs decoherence, as the paper assumes.\n",
                sb.max_decomposition_infidelity,
                s1.max_decomposition_infidelity,
                s2.max_decomposition_infidelity);

    // Fig. 3 flavor: show one synthesized SWAP decomposition.
    std::printf("\nexample: SWAP on edge 0 of the Criterion-1 set "
                "(Fig. 3(d) shape):\n");
    const TwoQubitDecomposition &dec = cache_1.getOrSynthesize(
        0, swapGate(), crit1.bases[0].gate, synth);
    std::printf("  %d layers of the %.2f ns basis gate %s, "
                "infidelity %.1e\n", dec.layers(),
                crit1.bases[0].duration_ns,
                crit1.edges[0].gate.coords.str(4).c_str(),
                dec.infidelity);
    std::printf("  duration: %.1f ns = %d x %.2f + %d x %.0f (1Q "
                "layers)\n",
                dec.duration(crit1.bases[0].duration_ns, kOneQubitNs),
                dec.layers(), crit1.bases[0].duration_ns,
                dec.layers() + 1, kOneQubitNs);
    return 0;
}
