/**
 * @file
 * Fleet-scale topology benchmark: drives the serving stack over
 * realistic 100+ qubit lattices (heavy-hex and grid) with per-edge
 * drifted EdgeCalibration -- every edge choosing its own basis -- so
 * cache sharding, plan/Weyl retirement, and the recalib scheduler's
 * per-edge queues are stressed at realistic fan-out instead of on
 * replicated pairs. Emits BENCH_scale.json for the CI bench gate
 * (scripts/check_bench.py).
 *
 * Each scaling-curve point runs the full serving lifecycle on one
 * heterogeneous device: initial tuneup (initDevices), a cold
 * workload-zoo compile pass through the shared Weyl-class cache and
 * the transpile-plan cache, a warm repeat (memo-tier traffic), one
 * drift cycle through the async recalibration scheduler's per-edge
 * queues, a post-recalibration pass at the bumped basis epochs, and
 * an epoch-sweep retirement (retireCache). The curve reports edges
 * vs wall time vs shared-cache/plan-cache hit rates vs snapshot
 * bytes.
 *
 * Determinism gate: a 2-device fleet on the 115-qubit heavy-hex
 * lattice (heavyHex(4, 9)) must produce a bit-identical
 * fleetReportDigest at 1 shard and at N shards.
 *
 * Usage: bench_scale [--quick|--smoke] [--threads N]
 *
 * JSON schema (BENCH_scale.json):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "points": { "<label>": {
 *       "topology": "heavy-hex"|"grid", "rows": int, "cols": int,
 *       "qubits": int, "edges": int, "edge_limit": int,
 *       "live_contexts": int,
 *       "calib_ms": double, "compile_cold_ms": double,
 *       "compile_warm_ms": double, "compile_post_ms": double,
 *       "recalib_ms": double, "recalibrated_edges": int,
 *       "plan_memo_hits": int, "plan_replay_hits": int,
 *       "plan_misses": int,
 *       "cache_hits": int, "cache_misses": int,
 *       "dedupe_ratio": double,
 *       "classes_retired": int, "plans_retired": int,
 *       "snapshot_bytes": int, "live_entries": int,
 *       "dead_entries": int, "point_wall_ms": double } },
 *   "top": { "label": str, "qubits": int, "edges": int,
 *            "dedupe_ratio": double, "plan_memo_hits": int,
 *            "plans_retired": int, "point_wall_ms": double },
 *   "determinism": { "topology": "heavy-hex", "rows": int,
 *       "cols": int, "qubits": int, "edges": int, "devices": int,
 *       "edge_limit": int, "shards_a": int, "shards_b": int,
 *       "results_match": bool, "wall_a_ms": double,
 *       "wall_b_ms": double },
 *   "report_digest": "0x..."
 * }
 *
 * dedupe_ratio is the point's aggregate shared-cache hit rate:
 * the fraction of Weyl-class lookups served without resynthesis
 * across the whole lifecycle (cross-edge + cross-pass dedupe on a
 * fully heterogeneous device). report_digest is the FNV-64
 * fleetReportDigest() of the determinism fleet's sharded report.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/qft.hpp"
#include "apps/workloads.hpp"
#include "core/fleet.hpp"
#include "linalg/mat4_kernels.hpp"
#include "serve/api.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

double
sinceMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One lattice of the scaling curve. */
struct PointSpec
{
    const char *label;
    DeviceTopology topology;
    int rows;
    int cols;
    /** Distinct simulated edges (< 0 = every edge heterogeneous);
     *  quick mode caps the 115q tuneup cost, full mode never caps. */
    int edge_limit;
};

FleetOptions
scaleFleetOptions(int shards, int threads, int edge_limit)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    opts.synth = benchSynth();
    opts.calib.edge_limit = edge_limit;
    // Bench-scale simulator settings (as bench_recalib): the tuneup
    // stays ~75 ms/edge so a full 130-edge heterogeneous lattice
    // calibrates in seconds, not minutes.
    opts.calib.sim.dt = 0.01;
    opts.calib.sim.probe_dt = 0.04;
    opts.calib.sim.probe_duration = 60.0;
    opts.calib.sim.drive_scan_points = 7;
    return opts;
}

FleetDeviceSpec
latticeSpec(const PointSpec &p, uint64_t seed)
{
    FleetDeviceSpec spec;
    spec.grid.topology = p.topology;
    spec.grid.rows = p.rows;
    spec.grid.cols = p.cols;
    spec.grid.seed = seed;
    spec.xi = 0.04;
    // Per-edge drifted unit cells: on top of the per-qubit sampled
    // frequencies, every edge draws its own drift stream, so no two
    // edges (and no two devices) share a calibration.
    spec.apply_drift = true;
    return spec;
}

/** Workload-zoo serving mix, sized to the lattice. */
std::vector<FleetCircuit>
scaleWorkloads(int qubits)
{
    std::vector<FleetCircuit> v;
    WorkloadParams ising;
    ising.qubits = qubits; // full-width chain: touches ~every edge
    ising.theta = 0.35;
    v.push_back({"ising" + std::to_string(ising.qubits),
                 trotterIsingCircuit(ising)});
    WorkloadParams heis;
    heis.qubits = std::min(16, qubits);
    heis.theta = 0.42;
    v.push_back({"heisenberg" + std::to_string(heis.qubits),
                 trotterHeisenbergCircuit(heis)});
    WorkloadParams rcs;
    rcs.qubits = qubits; // full-width brickwork: pure class dedupe
    rcs.depth = 2;
    rcs.seed = 99;
    v.push_back({"rcs" + std::to_string(rcs.qubits),
                 rcsLayersCircuit(rcs)});
    WorkloadParams adder;
    adder.qubits = std::min(22, qubits);
    adder.depth = 2; // two Cuccaro adders back-to-back
    v.push_back({"adder_chain" + std::to_string(adder.qubits),
                 adderChainCircuit(adder)});
    const int qft_n = std::min(10, qubits);
    v.push_back({"qft" + std::to_string(qft_n), qftCircuit(qft_n)});
    return v;
}

/** Plan-tier disposition of one compile pass. */
struct PassStats
{
    double wall_ms = 0.0;
    uint64_t memo_hits = 0;
    uint64_t replay_hits = 0;
    uint64_t misses = 0;
};

/**
 * Compile every circuit on every live device through the shared
 * Weyl-class cache AND the fleet plan cache (runCompile's PlanCache
 * overload -- the serving layer's tier order: memo, replay, full
 * pipeline + capture).
 */
PassStats
planCompilePass(FleetDriver &driver,
                const std::vector<FleetCircuit> &circuits,
                uint64_t *next_id)
{
    const PlanCacheStats before = driver.planCache().stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t d = 0; d < driver.deviceCount(); ++d) {
        const FleetDeviceState &state =
            driver.device(static_cast<int>(d));
        SynthEngine engine(driver.pool());
        const SynthClient client{engine, driver.cache(),
                                 static_cast<int>(d)};
        for (const FleetCircuit &fc : circuits) {
            CompileRequest req;
            req.request_id = (*next_id)++;
            req.device_id = static_cast<int>(d);
            req.name = fc.name;
            req.circuit = fc.circuit;
            req.options.transpile = driver.options().transpile;
            req.options.transpile.synth = driver.options().synth;
            req.options.t_1q_ns = driver.options().t_1q_ns;
            req.options.t_coherence_ns =
                driver.options().t_coherence_ns;
            const CompileResponse resp = runCompile(
                state.device, state.calibration, SynthRoute(client),
                req, &driver.planCache());
            if (resp.status != CompileStatus::Ok)
                throw std::runtime_error(resp.error);
        }
    }
    PassStats s;
    s.wall_ms = sinceMs(t0);
    const PlanCacheStats after = driver.planCache().stats();
    s.memo_hits = after.memo_hits - before.memo_hits;
    s.replay_hits = after.replay_hits - before.replay_hits;
    s.misses = after.misses - before.misses;
    return s;
}

/** Deterministic drifted-edge requests of one cycle (cf.
 *  bench_recalib): a recalibrate_fraction draw per device. */
std::vector<RecalibEdgeRequest>
cycleRequests(const FleetDriver &driver, uint64_t cycle,
              double fraction, uint64_t drift_seed)
{
    std::vector<RecalibEdgeRequest> requests;
    for (size_t d = 0; d < driver.deviceCount(); ++d) {
        const FleetDeviceState &state =
            driver.device(static_cast<int>(d));
        const int n_edges =
            static_cast<int>(state.device.coupling().edges().size());
        DriftCycleOptions dopts;
        dopts.recalibrate_fraction = fraction;
        dopts.seed = Rng::deriveSeed(drift_seed,
                                     static_cast<uint64_t>(d));
        DriftCycle drift(n_edges, dopts);
        DriftCycle::Step step;
        for (uint64_t c = 0; c < cycle; ++c)
            step = drift.advance();
        for (const int e : step.drifted_edges) {
            RecalibEdgeRequest req;
            req.device_id = static_cast<int>(d);
            req.edge_id = e;
            req.cycle = cycle;
            req.params = drift.paramsAt(state.device.edgeParams(e), e,
                                        cycle);
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

struct PointResult
{
    PointSpec spec;
    int qubits = 0;
    int edges = 0;
    size_t live_contexts = 0;
    double calib_ms = 0.0;
    PassStats cold;
    PassStats warm;
    PassStats post;
    double recalib_ms = 0.0;
    int recalibrated_edges = 0;
    SharedDecompositionCache::Stats cache;
    size_t classes_retired = 0;
    uint64_t plans_retired = 0;
    size_t snapshot_bytes = 0;
    size_t live_entries = 0;
    size_t dead_entries = 0;
    double point_wall_ms = 0.0;

    double
    dedupeRatio() const
    {
        return cache.hitRate();
    }
};

/** The full serving lifecycle on one heterogeneous lattice. */
PointResult
runPoint(const PointSpec &spec, int threads)
{
    PointResult r;
    r.spec = spec;
    const auto t_point = std::chrono::steady_clock::now();

    FleetDriver driver(
        scaleFleetOptions(/*shards=*/1, threads, spec.edge_limit));

    auto t0 = std::chrono::steady_clock::now();
    driver.initDevices({latticeSpec(spec, /*seed=*/17)});
    r.calib_ms = sinceMs(t0);

    const FleetDeviceState &state = driver.device(0);
    r.qubits = state.device.numQubits();
    r.edges =
        static_cast<int>(state.device.coupling().edges().size());

    const std::vector<FleetCircuit> circuits =
        scaleWorkloads(r.qubits);
    uint64_t next_id = 1;

    // Cold pass fills both cache tiers; the warm repeat is memo-tier
    // traffic against unchanged basis epochs.
    r.cold = planCompilePass(driver, circuits, &next_id);
    r.warm = planCompilePass(driver, circuits, &next_id);
    r.live_contexts = driver.cacheManifest().live_contexts;

    // One drift cycle through the per-edge recalibration queues.
    const std::vector<RecalibEdgeRequest> requests = cycleRequests(
        driver, /*cycle=*/1, /*fraction=*/0.25, /*drift_seed=*/777);
    r.recalibrated_edges = static_cast<int>(requests.size());
    t0 = std::chrono::steady_clock::now();
    driver.recalibrate(requests);
    driver.drainRecalibration();
    r.recalib_ms = sinceMs(t0);

    // Post-recalibration pass: bumped epochs invalidate every plan
    // for this device (plan misses + recapture), and the retuned
    // edges' new bases synthesize fresh classes.
    r.post = planCompilePass(driver, circuits, &next_id);

    // Epoch-sweep retirement: dead contexts (the retuned edges' old
    // bases) and dead-epoch plans are dropped; the manifest after
    // the sweep is the settled snapshot a saveCache() would write.
    const CacheManifest before = driver.cacheManifest();
    r.dead_entries = before.dead_entries;
    r.classes_retired = driver.retireCache();
    r.plans_retired = driver.planCache().stats().retired;
    const CacheManifest after = driver.cacheManifest();
    r.snapshot_bytes = after.bytes;
    r.live_entries = after.live_entries;

    r.cache = driver.cache().stats();
    r.point_wall_ms = sinceMs(t_point);
    return r;
}

struct DetResult
{
    PointSpec spec;
    int qubits = 0;
    int edges = 0;
    int devices = 2;
    int shards_a = 2;
    int shards_b = 1;
    bool results_match = false;
    double wall_a_ms = 0.0;
    double wall_b_ms = 0.0;
    uint64_t report_digest = 0;
};

/**
 * The determinism contract at fan-out: a 2-device heterogeneous
 * fleet on the point's lattice, run() sharded and single-sharded,
 * must produce bit-identical FleetReports (fleetReportDigest).
 */
DetResult
runDeterminism(const PointSpec &spec, int threads)
{
    DetResult det;
    det.spec = spec;
    const std::vector<FleetDeviceSpec> specs = {
        latticeSpec(spec, /*seed=*/17), latticeSpec(spec, /*seed=*/18)};
    const GridDevice probe(specs[0].grid);
    det.qubits = probe.numQubits();
    det.edges = static_cast<int>(probe.coupling().edges().size());

    std::vector<FleetCircuit> circuits;
    WorkloadParams ising;
    ising.qubits = std::min(12, det.qubits);
    circuits.push_back({"ising" + std::to_string(ising.qubits),
                        trotterIsingCircuit(ising)});
    circuits.push_back({"qft4", qftCircuit(std::min(4, det.qubits))});

    FleetDriver a(scaleFleetOptions(det.shards_a, threads,
                                    spec.edge_limit));
    auto t0 = std::chrono::steady_clock::now();
    const FleetReport ra = a.run(specs, circuits);
    det.wall_a_ms = sinceMs(t0);

    FleetDriver b(scaleFleetOptions(det.shards_b, threads,
                                    spec.edge_limit));
    t0 = std::chrono::steady_clock::now();
    const FleetReport rb = b.run(specs, circuits);
    det.wall_b_ms = sinceMs(t0);

    // Identical-but-failed runs do not count as determinism.
    det.results_match = fleetReportsBitIdentical(ra, rb)
                        && ra.failedDevices() == 0
                        && rb.failedDevices() == 0;
    det.report_digest = fleetReportDigest(ra);
    return det;
}

const char *
topologyName(DeviceTopology t)
{
    return t == DeviceTopology::HeavyHex ? "heavy-hex" : "grid";
}

void
writeJson(const char *path, bool quick, bool smoke, int threads,
          const std::vector<PointResult> &points, const DetResult &det)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_scale: cannot write %s", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"quick\": %s,\n  \"smoke\": %s,\n"
                 "  \"threads\": %d,\n  \"points\": {\n",
                 quick ? "true" : "false", smoke ? "true" : "false",
                 threads);
    for (size_t i = 0; i < points.size(); ++i) {
        const PointResult &r = points[i];
        std::fprintf(
            f,
            "    \"%s\": {\n"
            "      \"topology\": \"%s\",\n"
            "      \"rows\": %d,\n      \"cols\": %d,\n"
            "      \"qubits\": %d,\n      \"edges\": %d,\n"
            "      \"edge_limit\": %d,\n"
            "      \"live_contexts\": %zu,\n"
            "      \"calib_ms\": %.3f,\n"
            "      \"compile_cold_ms\": %.3f,\n"
            "      \"compile_warm_ms\": %.3f,\n"
            "      \"compile_post_ms\": %.3f,\n"
            "      \"recalib_ms\": %.3f,\n"
            "      \"recalibrated_edges\": %d,\n"
            "      \"plan_memo_hits\": %llu,\n"
            "      \"plan_replay_hits\": %llu,\n"
            "      \"plan_misses\": %llu,\n"
            "      \"cache_hits\": %llu,\n"
            "      \"cache_misses\": %llu,\n"
            "      \"dedupe_ratio\": %.4f,\n"
            "      \"classes_retired\": %zu,\n"
            "      \"plans_retired\": %llu,\n"
            "      \"snapshot_bytes\": %zu,\n"
            "      \"live_entries\": %zu,\n"
            "      \"dead_entries\": %zu,\n"
            "      \"point_wall_ms\": %.3f\n"
            "    }%s\n",
            r.spec.label, topologyName(r.spec.topology), r.spec.rows,
            r.spec.cols, r.qubits, r.edges, r.spec.edge_limit,
            r.live_contexts, r.calib_ms, r.cold.wall_ms,
            r.warm.wall_ms, r.post.wall_ms, r.recalib_ms,
            r.recalibrated_edges,
            static_cast<unsigned long long>(r.warm.memo_hits),
            static_cast<unsigned long long>(r.warm.replay_hits
                                            + r.post.replay_hits),
            static_cast<unsigned long long>(
                r.cold.misses + r.warm.misses + r.post.misses),
            static_cast<unsigned long long>(r.cache.hits),
            static_cast<unsigned long long>(r.cache.misses),
            r.dedupeRatio(), r.classes_retired,
            static_cast<unsigned long long>(r.plans_retired),
            r.snapshot_bytes, r.live_entries, r.dead_entries,
            r.point_wall_ms, i + 1 < points.size() ? "," : "");
    }
    const PointResult &top = points.back();
    std::fprintf(
        f,
        "  },\n  \"top\": {\n"
        "    \"label\": \"%s\",\n    \"qubits\": %d,\n"
        "    \"edges\": %d,\n    \"dedupe_ratio\": %.4f,\n"
        "    \"plan_memo_hits\": %llu,\n"
        "    \"plans_retired\": %llu,\n"
        "    \"point_wall_ms\": %.3f\n  },\n",
        top.spec.label, top.qubits, top.edges, top.dedupeRatio(),
        static_cast<unsigned long long>(top.warm.memo_hits),
        static_cast<unsigned long long>(top.plans_retired),
        top.point_wall_ms);
    std::fprintf(
        f,
        "  \"determinism\": {\n"
        "    \"topology\": \"%s\",\n"
        "    \"rows\": %d,\n    \"cols\": %d,\n"
        "    \"qubits\": %d,\n    \"edges\": %d,\n"
        "    \"devices\": %d,\n    \"edge_limit\": %d,\n"
        "    \"shards_a\": %d,\n    \"shards_b\": %d,\n"
        "    \"results_match\": %s,\n"
        "    \"wall_a_ms\": %.3f,\n    \"wall_b_ms\": %.3f\n  },\n"
        "  \"report_digest\": \"0x%016llx\"\n}\n",
        topologyName(det.spec.topology), det.spec.rows, det.spec.cols,
        det.qubits, det.edges, det.devices, det.spec.edge_limit,
        det.shards_a, det.shards_b,
        det.results_match ? "true" : "false", det.wall_a_ms,
        det.wall_b_ms,
        static_cast<unsigned long long>(det.report_digest));
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool smoke = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0
                 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else {
            std::fprintf(
                stderr,
                "usage: bench_scale [--quick|--smoke] [--threads N]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_scale: 100+ qubit lattices, per-edge "
                "heterogeneous bases ===\n");
    std::printf("mode: %s\n",
                smoke ? "smoke" : quick ? "quick" : "full");
    std::printf("mat4 backend: %s\n", mat4BackendBanner().c_str());

    // Curve points in increasing edge count; the last point is the
    // "top" the gate floors bind to. Full mode calibrates every edge
    // of every lattice (fully heterogeneous); quick caps the 115q
    // tuneup at 24 distinct edges, smoke shrinks the lattice.
    std::vector<PointSpec> points;
    PointSpec det_spec;
    if (smoke) {
        points = {{"hh1x1", DeviceTopology::HeavyHex, 1, 1, -1}};
        det_spec = {"hh1x1", DeviceTopology::HeavyHex, 1, 1, -1};
    } else if (quick) {
        points = {{"hh2x2", DeviceTopology::HeavyHex, 2, 2, -1},
                  {"hh4x9", DeviceTopology::HeavyHex, 4, 9, 24}};
        det_spec = {"hh4x9", DeviceTopology::HeavyHex, 4, 9, 24};
    } else {
        points = {{"hh2x2", DeviceTopology::HeavyHex, 2, 2, -1},
                  {"hh2x4", DeviceTopology::HeavyHex, 2, 4, -1},
                  {"hh3x6", DeviceTopology::HeavyHex, 3, 6, -1},
                  {"grid10x10", DeviceTopology::Grid, 10, 10, -1},
                  {"hh4x9", DeviceTopology::HeavyHex, 4, 9, -1}};
        det_spec = {"hh4x9", DeviceTopology::HeavyHex, 4, 9, -1};
    }

    std::vector<PointResult> results;
    for (const PointSpec &p : points) {
        std::printf("[point] %s (%s %dx%d)...\n", p.label,
                    topologyName(p.topology), p.rows, p.cols);
        results.push_back(runPoint(p, threads));
        const PointResult &r = results.back();
        std::printf("  %d qubits, %d edges, %zu live contexts; "
                    "calib %.0f ms, cold %.0f ms, warm %.0f ms\n",
                    r.qubits, r.edges, r.live_contexts, r.calib_ms,
                    r.cold.wall_ms, r.warm.wall_ms);
    }

    std::printf("[determinism] 2-device %s %dx%d fleet, %d vs %d "
                "shard...\n",
                topologyName(det_spec.topology), det_spec.rows,
                det_spec.cols, 2, 1);
    const DetResult det = runDeterminism(det_spec, threads);

    std::printf("\n%-10s %7s %7s %9s %10s %10s %9s %10s\n", "point",
                "qubits", "edges", "calib(ms)", "cold(ms)",
                "warm(ms)", "dedupe", "snap(B)");
    for (const PointResult &r : results) {
        std::printf("%-10s %7d %7d %9.0f %10.0f %10.0f %8.1f%% "
                    "%10zu\n",
                    r.spec.label, r.qubits, r.edges, r.calib_ms,
                    r.cold.wall_ms, r.warm.wall_ms,
                    100.0 * r.dedupeRatio(), r.snapshot_bytes);
    }
    std::printf("determinism (%d qubits, %d devices, %d vs %d "
                "shard): %s\n",
                det.qubits, det.devices, det.shards_a, det.shards_b,
                det.results_match ? "bit-identical" : "MISMATCH");
    std::printf("report digest: 0x%016llx\n",
                static_cast<unsigned long long>(det.report_digest));

    writeJson("BENCH_scale.json", quick, smoke, threads, results,
              det);

    bool ok = det.results_match;
    const PointResult &top = results.back();
    if (top.cache.hits == 0) {
        std::printf("FAIL: top point shows no shared-cache dedupe\n");
        ok = false;
    }
    if (top.warm.memo_hits == 0) {
        std::printf("FAIL: warm pass never hit the plan memo tier\n");
        ok = false;
    }
    if (top.recalibrated_edges == 0) {
        std::printf("FAIL: drift cycle recalibrated no edge\n");
        ok = false;
    }
    if (top.plans_retired == 0) {
        std::printf("FAIL: epoch sweep retired no plan\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
