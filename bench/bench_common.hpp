#ifndef QBASIS_BENCH_COMMON_HPP
#define QBASIS_BENCH_COMMON_HPP

/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Environment knobs:
 *   QBASIS_EDGE_LIMIT=k  simulate only the first k device edges and
 *                        replicate them (quick smoke runs).
 *   QBASIS_ROWS / QBASIS_COLS  shrink the device grid.
 */

#include <cstdlib>
#include <string>

#include "core/experiment.hpp"

namespace qbasis {
namespace bench {

inline int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::atoi(v);
}

inline GridDeviceParams
paperDeviceParams()
{
    GridDeviceParams p;
    p.rows = envInt("QBASIS_ROWS", 10);
    p.cols = envInt("QBASIS_COLS", 10);
    return p;
}

inline DeviceCalibrationOptions
calibrationOptions(double max_ns)
{
    DeviceCalibrationOptions opts;
    opts.max_ns = max_ns;
    opts.edge_limit = envInt("QBASIS_EDGE_LIMIT", -1);
    return opts;
}

/** The paper's constants. */
inline constexpr double kOneQubitNs = 20.0;
inline constexpr double kCoherenceNs = 80e3; // T = 80 us
inline constexpr double kBaselineXi = 0.005;
inline constexpr double kStrongXi = 0.04;

} // namespace bench
} // namespace qbasis

#endif // QBASIS_BENCH_COMMON_HPP
