/**
 * @file
 * Reproduces Fig. 4: the decomposition-power regions of Section V.
 *
 * (a)   the L0/L1 segments of gates that synthesize SWAP in 2 layers
 *       of one gate;
 * (b)   mirror pairs for 2-layer SWAP synthesis (Appendix B);
 * (c,d) the four tetrahedra of gates unable to do SWAP in 3 layers;
 *       the able set covers 68.5% of the chamber;
 * (e)   the three tetrahedra for CNOT in 2 layers; able set 75%;
 * (f)   the intersection used by Criterion 2.
 *
 * Every closed-form region is cross-validated against the numerical
 * two-layer feasibility oracle.
 */

#include <cstdio>

#include "monodromy/mirror.hpp"
#include "monodromy/oracle.hpp"
#include "monodromy/regions.hpp"
#include "monodromy/volume.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "weyl/gates.hpp"
#include "weyl/geometry.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

int
main()
{
    std::printf("=== Figure 4: regions of decomposition power ===\n\n");

    // (a) L0 / L1 segments.
    CartanCoords a0, b0, a1, b1;
    l0Segment(a0, b0);
    l1Segment(a1, b1);
    std::printf("(a) SWAP-in-2 (single gate) segments:\n");
    std::printf("    L0: %s -> %s   (B gate to sqrt(SWAP))\n",
                a0.str(3).c_str(), b0.str(3).c_str());
    std::printf("    L1: %s -> %s   (B gate to sqrt(SWAP)^dag)\n\n",
                a1.str(3).c_str(), b1.str(3).c_str());

    // (b) Mirror pairs.
    std::printf("(b) SWAP-in-2 mirror pairs (Appendix B):\n");
    TextTable mirrors({"gate", "coords", "mirror", "example"});
    mirrors.addRow({"CNOT", coords::cnot().str(3),
                    swapMirror(coords::cnot()).str(3),
                    "CNOT + iSWAP -> SWAP"});
    mirrors.addRow({"B", coords::bGate().str(3),
                    swapMirror(coords::bGate()).str(3),
                    "self-mirror (on L0)"});
    mirrors.addRow({"sqiSW", coords::sqrtIswap().str(3),
                    swapMirror(coords::sqrtIswap()).str(3), ""});
    mirrors.print();

    // (c,d,e) Region volumes.
    double swap3_complement = 0.0;
    for (const Tetrahedron &t : swap3ComplementTetrahedra())
        swap3_complement += t.volume();
    double cnot2_complement = 0.0;
    for (const Tetrahedron &t : cnot2ComplementTetrahedra())
        cnot2_complement += t.volume();

    Rng rng(4242);
    const int samples = 200000;
    const double frac_swap3 = chamberVolumeFraction(
        [](const CartanCoords &c) {
            return canSynthesizeSwapIn3Layers(c);
        },
        samples, rng);
    const double frac_cnot2 = chamberVolumeFraction(
        [](const CartanCoords &c) {
            return canSynthesizeCnotIn2Layers(c);
        },
        samples, rng);
    const double frac_both = chamberVolumeFraction(
        [](const CartanCoords &c) { return inCriterion2Region(c); },
        samples, rng);

    std::printf("\n(c,d,e,f) chamber volume fractions "
                "(MC, %dk samples):\n", samples / 1000);
    TextTable vols({"region", "closed-form", "Monte Carlo", "paper"});
    vols.addRow({"SWAP in <=3 layers",
                 fmtFixed(1.0 - swap3_complement / weylChamberVolume(),
                          4),
                 fmtFixed(frac_swap3, 4), "0.685"});
    vols.addRow({"CNOT in <=2 layers",
                 fmtFixed(1.0 - cnot2_complement / weylChamberVolume(),
                          4),
                 fmtFixed(frac_cnot2, 4), "0.75"});
    vols.addRow({"both (Criterion 2)", "-", fmtFixed(frac_both, 4),
                 "-"});
    vols.print();

    // Oracle cross-validation away from region boundaries.
    std::printf("\ncross-validating the closed-form regions against "
                "the numerical oracle...\n");
    OracleOptions oopts;
    int agree = 0, total = 0;
    Rng rng2(77);
    while (total < 60) {
        const CartanCoords c = sampleChamberPoint(rng2);
        bool near_boundary = false;
        for (const Tetrahedron &t : swap3ComplementTetrahedra())
            if (t.contains(c, 0.02) != t.contains(c, -0.02))
                near_boundary = true;
        if (near_boundary)
            continue;
        ++total;
        const Mat4 g = canonicalGate(c.tx, c.ty, c.tz);
        const bool region = canSynthesizeSwapIn3Layers(c);
        const bool oracle =
            uniformLayerFeasible(swapGate(), g, 3, oopts);
        agree += (region == oracle);
    }
    std::printf("SWAP-3 region vs oracle agreement: %d/%d\n", agree,
                total);
    return 0;
}
