/**
 * @file
 * Cache-persistence benchmark: cold vs warm-start fleet compilation
 * through the versioned Weyl-class snapshot (synth/cache_io), plus
 * the cycle-aware retirement sweep. Emits BENCH_persist.json for the
 * CI bench gate (scripts/check_bench.py).
 *
 * Default mode (in-process round trip):
 *   1. cold  -- fresh fleet, compile the workload, save the snapshot;
 *   2. warm  -- fresh fleet (simulating a restarted process), load
 *      the snapshot, compile the same workload: every class is a
 *      pure lookup, results must be bit-identical to the cold pass;
 *   3. retire -- a basis-changing drift cycle retunes edges, the
 *      fleet recompiles (old- and new-basis classes now coexist),
 *      then the epoch sweep drops the dead classes and the snapshot
 *      written afterwards must be smaller than one written before;
 *   4. corrupt -- a byte-flipped and a truncated copy of the
 *      snapshot must both be rejected gracefully.
 *
 * Cross-process modes (the CI persist-roundtrip job):
 *   --write PATH   compile and save PATH + PATH.digest (an FNV-64
 *                  digest of the compile results). When PATH already
 *                  exists (a snapshot restored from a previous
 *                  workflow run's cache), the writer warm-starts
 *                  from it first -- the cross-run amortization the
 *                  artifact cache exists to provide.
 *   --read PATH    fresh process; loads PATH, compiles warm, asserts
 *                  warm hit rate >= 0.95 and that its own digest
 *                  equals PATH.digest -- bit-identical across
 *                  processes, which is the whole point.
 *
 * Usage: bench_persist [--quick|--smoke] [--threads N]
 *                      [--snapshot PATH] [--write PATH | --read PATH]
 *
 * JSON schema (BENCH_persist.json, default mode only):
 * {
 *   "quick": bool, "smoke": bool, "threads": int,
 *   "fleet": { "devices": int, "circuits": int },
 *   "snapshot": { "format_version": int, "bytes": int,
 *                 "entries": int },
 *   "cold": { "wall_ms": double, "classes": int, "misses": int },
 *   "warm": { "wall_ms": double, "hits": int, "misses": int,
 *             "hit_rate": double },
 *   "speedup": double,            // cold.wall / warm.wall
 *   "results_match": bool,        // warm pass bit-identical to cold
 *   "corrupt_rejected": bool,
 *   "retirement": { "retired": int, "entries_before": int,
 *                   "entries_after": int, "bytes_before": int,
 *                   "bytes_after": int, "reduced": bool }
 * }
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/bv.hpp"
#include "apps/qaoa.hpp"
#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "synth/cache_io.hpp"
#include "synth/depth_cache.hpp"
#include "util/logging.hpp"

using namespace qbasis;

namespace {

/** Warm hit-rate floor shared with bench/baselines.json and the CI
 *  persist-roundtrip job: a restored fleet recompiling its own
 *  workload must serve >= 95% of lookups from the snapshot. */
constexpr double kWarmHitRateFloor = 0.95;

/** Bench-scale synthesis settings (cheap but converging). */
SynthOptions
benchSynth()
{
    SynthOptions s;
    s.restarts = 3;
    s.adam_iters = 350;
    s.polish_iters = 120;
    s.max_layers = 4;
    s.target_infidelity = 1e-8;
    return s;
}

struct BenchConfig
{
    int devices = 4;
    int edge_limit = -1;
    int threads = 0;
    bool smoke = false;
    bool quick = false;
    uint64_t drift_seed = 4242;
};

FleetOptions
benchFleetOptions(const BenchConfig &cfg)
{
    FleetOptions opts;
    opts.shards = cfg.devices;
    opts.threads = cfg.threads;
    opts.synth = benchSynth();
    opts.calib.edge_limit = cfg.edge_limit;
    // Bench-scale simulator settings (same coarsening as
    // bench_recalib): calibration must stay cheap relative to the
    // synthesis work whose persistence is being measured.
    opts.calib.sim.dt = 0.01;
    opts.calib.sim.probe_dt = 0.04;
    opts.calib.sim.probe_duration = 60.0;
    opts.calib.sim.drive_scan_points = 7;
    return opts;
}

std::vector<FleetDeviceSpec>
benchFleet(int devices)
{
    std::vector<FleetDeviceSpec> specs;
    specs.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
        FleetDeviceSpec spec;
        spec.grid.rows = 2;
        spec.grid.cols = 2;
        spec.grid.seed = 97 + static_cast<uint64_t>(d);
        spec.xi = 0.04;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<FleetCircuit>
benchCircuits(const BenchConfig &cfg)
{
    // Distinct CPhase/RZZ angles populate many Weyl classes per
    // basis -- the resynthesis bill a restarted process re-pays
    // without the snapshot.
    std::vector<FleetCircuit> circuits;
    if (cfg.smoke) {
        circuits.push_back({"qft3", qftCircuit(3)});
    } else {
        circuits.push_back({"qft4", qftCircuit(4)});
        circuits.push_back({"bv3", bvAllOnesCircuit(3)});
    }
    const int qaoa = cfg.smoke ? 1 : cfg.quick ? 2 : 4;
    for (int k = 0; k < qaoa; ++k) {
        QaoaParams qp;
        qp.gamma = 0.3 + 0.2 * k;
        qp.beta = 0.25;
        circuits.push_back({"qaoa4_g" + std::to_string(k),
                            qaoaErdosRenyiCircuit(4, 0.5, qp)});
    }
    return circuits;
}

std::string
digestHex(uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

struct PassResult
{
    double wall_ms = 0.0;
    FleetCompilePass pass;
    SharedDecompositionCache::Stats stats;
};

/** Time one compile pass over the whole fleet. */
PassResult
runPass(FleetDriver &driver,
        const std::vector<FleetCircuit> &circuits)
{
    PassResult r;
    const double t0 = driver.recalibNowMs();
    r.pass = driver.compileCircuits(circuits);
    r.wall_ms = driver.recalibNowMs() - t0;
    r.stats = driver.cache().stats();
    return r;
}

/** Byte-flipped and truncated copies of the snapshot must both be
 *  rejected without touching the destination cache. */
bool
corruptionRejected(const std::string &path)
{
    std::vector<uint8_t> bytes;
    if (!readFileBytes(path, &bytes)) {
        std::printf("corrupt check: cannot reopen %s\n", path.c_str());
        return false;
    }
    if (bytes.size() < 128) {
        std::printf("corrupt check: snapshot too small\n");
        return false;
    }

    bool ok = true;
    // Payload byte flip: the section CRC must catch it.
    {
        std::vector<uint8_t> flipped = bytes;
        flipped[flipped.size() - 9] ^= 0x40u;
        std::vector<CacheSnapshotEntry> out;
        const CacheIoResult r =
            decodeCacheSnapshot(flipped.data(), flipped.size(), &out);
        if (r.ok() || !out.empty()) {
            std::printf("corrupt check: byte flip accepted\n");
            ok = false;
        }
    }
    // Truncation: must be reported as such, not crash.
    {
        std::vector<CacheSnapshotEntry> out;
        const CacheIoResult r = decodeCacheSnapshot(
            bytes.data(), bytes.size() / 2, &out);
        if (r.ok() || !out.empty()) {
            std::printf("corrupt check: truncated snapshot accepted\n");
            ok = false;
        }
    }
    return ok;
}

struct RetireResult
{
    size_t retired = 0;
    CacheManifest before;
    CacheManifest after;

    bool
    reduced() const
    {
        return retired > 0 && after.bytes < before.bytes;
    }
};

/**
 * One basis-changing drift cycle: retune every edge of the first
 * `retire_devices` devices (drifted parameters select new basis
 * gates, so the old contexts of those devices go dead), recompile,
 * then run the epoch sweep on the DriftCycle's retire cadence.
 */
RetireResult
runRetirement(FleetDriver &driver, const BenchConfig &cfg,
              int retire_devices,
              const std::vector<FleetCircuit> &circuits)
{
    std::vector<RecalibEdgeRequest> requests;
    bool retire = false;
    for (int d = 0; d < retire_devices; ++d) {
        const FleetDeviceState &state = driver.device(d);
        const int n_edges =
            static_cast<int>(state.device.coupling().edges().size());
        DriftCycleOptions dopts;
        dopts.recalibrate_fraction = 1.0; // every edge changes basis
        dopts.retire_period = 1;          // sweep after this cycle
        dopts.seed = Rng::deriveSeed(cfg.drift_seed,
                                     static_cast<uint64_t>(d));
        DriftCycle drift(n_edges, dopts);
        const DriftCycle::Step step = drift.advance();
        retire = retire || step.retire_cache;
        for (const int e : step.drifted_edges) {
            RecalibEdgeRequest req;
            req.device_id = d;
            req.edge_id = e;
            req.cycle = step.cycle;
            req.params = drift.paramsAt(state.device.edgeParams(e), e,
                                        step.cycle);
            requests.push_back(std::move(req));
        }
    }
    driver.recalibrate(requests);
    driver.drainRecalibration();
    // Serve against the new bases: old- and new-basis classes now
    // coexist in the cache, which is exactly the unbounded growth
    // the sweep bounds.
    driver.compileCircuits(circuits);

    RetireResult r;
    r.before = driver.cacheManifest();
    if (retire)
        r.retired = driver.retireCache();
    r.after = driver.cacheManifest();
    return r;
}

void
writeJson(const char *path, const BenchConfig &cfg, size_t circuits,
          const CacheIoResult &saved, const PassResult &cold,
          const PassResult &warm, double warm_hit_rate, double speedup,
          bool results_match, bool corrupt_rejected,
          const RetireResult &retire)
{
    FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("bench_persist: cannot write %s", path);
        return;
    }
    std::fprintf(
        f,
        "{\n  \"quick\": %s,\n  \"smoke\": %s,\n  \"threads\": %d,\n"
        "  \"fleet\": { \"devices\": %d, \"circuits\": %zu },\n"
        "  \"snapshot\": {\n"
        "    \"format_version\": %u,\n"
        "    \"bytes\": %zu,\n"
        "    \"entries\": %zu\n  },\n"
        "  \"cold\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"classes\": %zu,\n"
        "    \"misses\": %llu\n  },\n"
        "  \"warm\": {\n"
        "    \"wall_ms\": %.3f,\n"
        "    \"hits\": %llu,\n"
        "    \"misses\": %llu,\n"
        "    \"hit_rate\": %.4f\n  },\n"
        "  \"speedup\": %.4f,\n"
        "  \"results_match\": %s,\n"
        "  \"corrupt_rejected\": %s,\n"
        "  \"retirement\": {\n"
        "    \"retired\": %zu,\n"
        "    \"entries_before\": %zu,\n"
        "    \"entries_after\": %zu,\n"
        "    \"bytes_before\": %zu,\n"
        "    \"bytes_after\": %zu,\n"
        "    \"reduced\": %s\n  }\n}\n",
        cfg.quick ? "true" : "false", cfg.smoke ? "true" : "false",
        cfg.threads, cfg.devices, circuits, kCacheFormatVersion,
        saved.bytes, saved.entries, cold.wall_ms, cold.stats.classes,
        static_cast<unsigned long long>(cold.stats.misses),
        warm.wall_ms,
        static_cast<unsigned long long>(warm.stats.hits),
        static_cast<unsigned long long>(warm.stats.misses),
        warm_hit_rate, speedup, results_match ? "true" : "false",
        corrupt_rejected ? "true" : "false", retire.retired,
        retire.before.entries, retire.after.entries,
        retire.before.bytes, retire.after.bytes,
        retire.reduced() ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

bool
writeDigestFile(const std::string &path, uint64_t digest)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "%s\n", digestHex(digest).c_str());
    return std::fclose(f) == 0;
}

bool
readDigestFile(const std::string &path, std::string *out)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    char buf[64] = {0};
    const bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
    std::fclose(f);
    if (!ok)
        return false;
    std::string s(buf);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    *out = s;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    std::string snapshot_path = "BENCH_persist_snapshot.qbwc";
    std::string write_path;
    std::string read_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            cfg.quick = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            cfg.smoke = true;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            cfg.threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--snapshot") == 0
                 && i + 1 < argc)
            snapshot_path = argv[++i];
        else if (std::strcmp(argv[i], "--write") == 0 && i + 1 < argc)
            write_path = argv[++i];
        else if (std::strcmp(argv[i], "--read") == 0 && i + 1 < argc)
            read_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: bench_persist [--quick|--smoke] "
                         "[--threads N] [--snapshot PATH] "
                         "[--write PATH | --read PATH]\n");
            return 2;
        }
    }

    setLogLevel(LogLevel::Warn);
    std::printf("=== bench_persist: warm-start fleet compilation from "
                "the Weyl-class snapshot ===\n");
    std::printf("mode: %s%s\n",
                cfg.smoke ? "smoke" : cfg.quick ? "quick" : "full",
                !write_path.empty()  ? " (write phase)"
                : !read_path.empty() ? " (read phase)"
                                     : "");

    if (cfg.smoke) {
        cfg.devices = 2;
        cfg.edge_limit = 1;
    } else if (cfg.quick) {
        cfg.devices = 3;
        cfg.edge_limit = 1;
    } else {
        cfg.devices = 4;
        cfg.edge_limit = -1;
    }
    const std::vector<FleetCircuit> circuits = benchCircuits(cfg);
    const std::vector<FleetDeviceSpec> specs = benchFleet(cfg.devices);

    // -- Cross-process write phase --------------------------------------
    if (!write_path.empty()) {
        DepthOracleCache::shared().clear();
        FleetDriver driver(benchFleetOptions(cfg));
        driver.initDevices(specs);
        // Warm-start from a pre-existing snapshot when one was
        // restored (the CI job's actions/cache hands a previous
        // workflow run's snapshot to this step): cached classes are
        // pure functions of the key, so reusing them is exactly the
        // amortization the subsystem exists for. A missing or
        // incompatible file just means a cold write.
        const CacheIoResult prior = driver.loadCache(write_path);
        if (prior.ok())
            std::printf("warm-started from existing snapshot "
                        "(%zu entries, %zu merged)\n",
                        prior.entries, prior.merged);
        const PassResult written = runPass(driver, circuits);
        const CacheIoResult saved = driver.saveCache(write_path);
        if (!saved.ok()) {
            std::printf("FAIL: save: %s (%s)\n", saved.message.c_str(),
                        cacheIoStatusName(saved.status));
            return 1;
        }
        const uint64_t digest = compilePassDigest(written.pass);
        if (!writeDigestFile(write_path + ".digest", digest)) {
            std::printf("FAIL: cannot write %s.digest\n",
                        write_path.c_str());
            return 1;
        }
        std::printf("%s compile %.1f ms, %zu classes -> %s "
                    "(%zu bytes), digest %s\n",
                    prior.ok() ? "warm" : "cold", written.wall_ms,
                    written.stats.classes, write_path.c_str(),
                    saved.bytes, digestHex(digest).c_str());
        return 0;
    }

    // -- Cross-process read phase ---------------------------------------
    if (!read_path.empty()) {
        DepthOracleCache::shared().clear();
        FleetDriver driver(benchFleetOptions(cfg));
        driver.initDevices(specs);
        const CacheIoResult loaded = driver.loadCache(read_path);
        if (!loaded.ok()) {
            std::printf("FAIL: load: %s (%s)\n", loaded.message.c_str(),
                        cacheIoStatusName(loaded.status));
            return 1;
        }
        const PassResult warm = runPass(driver, circuits);
        const CacheManifest manifest = driver.cacheManifest();
        const double hit_rate = manifest.warmHitRate();
        const std::string digest = digestHex(compilePassDigest(warm.pass));
        std::string expected;
        const bool have_expected =
            readDigestFile(read_path + ".digest", &expected);
        std::printf("loaded %zu entries (%zu merged); warm compile "
                    "%.1f ms, hit rate %.4f, digest %s (expected "
                    "%s)\n",
                    loaded.entries, loaded.merged, warm.wall_ms,
                    hit_rate,
                    digest.c_str(),
                    have_expected ? expected.c_str() : "<missing>");
        bool ok = true;
        if (hit_rate < kWarmHitRateFloor) {
            std::printf("FAIL: warm hit rate %.4f below %.2f\n",
                        hit_rate, kWarmHitRateFloor);
            ok = false;
        }
        if (!have_expected || digest != expected) {
            std::printf("FAIL: warm results differ from the writing "
                        "process\n");
            ok = false;
        }
        return ok ? 0 : 1;
    }

    // -- Default mode: in-process cold/warm/retire round trip ------------

    std::printf("[cold] %d devices, %zu circuits...\n", cfg.devices,
                circuits.size());
    DepthOracleCache::shared().clear();
    FleetDriver cold_driver(benchFleetOptions(cfg));
    cold_driver.initDevices(specs);
    const PassResult cold = runPass(cold_driver, circuits);
    const CacheIoResult saved = cold_driver.saveCache(snapshot_path);
    if (!saved.ok()) {
        std::printf("FAIL: save: %s (%s)\n", saved.message.c_str(),
                    cacheIoStatusName(saved.status));
        return 1;
    }

    std::printf("[warm] restart, load %s (%zu entries, %zu bytes)...\n",
                snapshot_path.c_str(), saved.entries, saved.bytes);
    DepthOracleCache::shared().clear();
    FleetDriver warm_driver(benchFleetOptions(cfg));
    warm_driver.initDevices(specs);
    const CacheIoResult loaded = warm_driver.loadCache(snapshot_path);
    if (!loaded.ok()) {
        std::printf("FAIL: load: %s (%s)\n", loaded.message.c_str(),
                    cacheIoStatusName(loaded.status));
        return 1;
    }
    const PassResult warm = runPass(warm_driver, circuits);
    const double warm_hit_rate =
        warm_driver.cacheManifest().warmHitRate();
    const bool results_match =
        compilePassesBitIdentical(cold.pass, warm.pass);
    const double speedup =
        warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0;

    std::printf("[retire] basis-changing drift cycle + epoch sweep...\n");
    const int retire_devices = cfg.smoke ? 1 : cfg.devices;
    const RetireResult retire =
        runRetirement(warm_driver, cfg, retire_devices, circuits);

    const bool corrupt_rejected = corruptionRejected(snapshot_path);

    // The post-sweep snapshot is what a serving loop would persist;
    // overwriting here keeps the on-disk file from growing across
    // cycles (the property the retirement sweep exists to provide).
    const CacheIoResult swept = warm_driver.saveCache(snapshot_path);

    std::printf("\n%-26s %12s %12s\n", "", "cold", "warm");
    std::printf("%-26s %12.1f %12.1f\n", "compile wall (ms)",
                cold.wall_ms, warm.wall_ms);
    std::printf("%-26s %12llu %12llu\n", "cache misses",
                static_cast<unsigned long long>(cold.stats.misses),
                static_cast<unsigned long long>(warm.stats.misses));
    std::printf("speedup (cold/warm wall): %.2fx\n", speedup);
    std::printf("warm hit rate: %.4f; results %s\n", warm_hit_rate,
                results_match ? "bit-identical" : "MISMATCH");
    std::printf("retirement: %zu classes retired, snapshot %zu -> %zu "
                "bytes (%s)\n",
                retire.retired, retire.before.bytes,
                retire.after.bytes,
                retire.reduced() ? "reduced" : "NOT REDUCED");
    std::printf("corrupt snapshots: %s\n",
                corrupt_rejected ? "rejected" : "ACCEPTED (BUG)");

    writeJson("BENCH_persist.json", cfg, circuits.size(), saved, cold,
              warm, warm_hit_rate, speedup, results_match,
              corrupt_rejected, retire);

    bool ok = results_match && corrupt_rejected && swept.ok();
    if (warm_hit_rate < kWarmHitRateFloor) {
        std::printf("FAIL: warm hit rate %.4f below %.2f\n",
                    warm_hit_rate, kWarmHitRateFloor);
        ok = false;
    }
    if (!retire.reduced()) {
        std::printf("FAIL: epoch sweep did not shrink the snapshot\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
