/**
 * @file
 * Reproduces Fig. 2: a simulated nonstandard Cartan trajectory.
 *
 * The paper's measured device produced an XY-like trajectory with a
 * coherent systematic offset and a 13 ns perfect entangler. Here the
 * case-study unit cell is driven at the strong amplitude (xi = 0.04)
 * where the flux-curve nonlinearity and coupler excitation bend the
 * trajectory away from the standard XY family; the table lists the
 * Cartan coordinates versus entangling pulse duration and marks the
 * first perfect entangler.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "sim/propagator.hpp"
#include "util/table.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;
using namespace qbasis::bench;

int
main()
{
    std::printf("=== Figure 2: nonstandard Cartan trajectory at "
                "strong drive ===\n\n");

    const GridDevice device{paperDeviceParams()};
    const PairDeviceParams params = device.edgeParams(0);
    std::printf("edge 0: f_a = %.3f GHz, f_b = %.3f GHz (far "
                "detuned)\n", params.qubit_a.omega / kTwoPi,
                params.qubit_b.omega / kTwoPi);

    const PairSimulator sim(params, device.couplerOmegaMax());
    std::printf("zero-ZZ bias: omega_c0 = %.3f GHz (residual ZZ "
                "%.1e rad/ns)\n", sim.omegaC0() / kTwoPi,
                sim.zzResidual());

    const double xi = kStrongXi;
    const double wd = sim.calibrateDriveFrequency(xi);
    std::printf("calibrated drive: %.4f GHz (dressed splitting "
                "%.4f GHz; strong-drive shift %.2f MHz)\n\n",
                wd / kTwoPi, sim.dressedSplitting() / kTwoPi,
                1e3 * (wd - sim.dressedSplitting()) / kTwoPi);

    const Trajectory traj = sim.simulateTrajectory(xi, wd, 26.0);

    TextTable table({"t (ns)", "tx", "ty", "tz", "ep", "PE",
                     "leakage"});
    bool first_pe_marked = false;
    double first_pe_t = -1.0;
    for (const TrajectoryPoint &pt : traj.points()) {
        const bool pe = isPerfectEntangler(pt.coords);
        if (pe && !first_pe_marked) {
            first_pe_marked = true;
            first_pe_t = pt.duration;
        }
        table.addRow({fmtFixed(pt.duration, 0),
                      fmtFixed(pt.coords.tx, 4),
                      fmtFixed(pt.coords.ty, 4),
                      fmtFixed(pt.coords.tz, 4),
                      fmtFixed(entanglingPower(pt.coords), 4),
                      pe ? (pt.duration == first_pe_t ? "YES <-"
                                                      : "yes")
                         : "",
                      fmtFixed(pt.leakage, 5)});
    }
    table.print();

    std::printf("\nfirst perfect entangler at %.0f ns "
                "[paper's measured device: 13 ns]\n", first_pe_t);
    std::printf("trajectory deviates from the XY family: tz grows "
                "with duration (coherent systematic, usable as a "
                "basis gate).\n");
    return 0;
}
