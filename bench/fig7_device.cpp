/**
 * @file
 * Reproduces Fig. 7: the simulated 10x10 grid device.
 *
 * Prints the checkerboard frequency-group map and the sampled
 * frequency statistics (two normal distributions with means 2 GHz
 * apart, 5% relative standard deviation).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace qbasis;
using namespace qbasis::bench;

int
main()
{
    std::printf("=== Figure 7: simulated grid device ===\n\n");

    const GridDevice device{paperDeviceParams()};
    const int rows = device.rows();
    const int cols = device.cols();

    std::printf("qubit indices (H = high-frequency group):\n\n");
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int q = r * cols + c;
            std::printf("%3d%c", q,
                        device.isHighFrequency(q) ? 'H' : ' ');
        }
        std::printf("\n");
    }

    RunningStats low, high;
    for (int q = 0; q < device.numQubits(); ++q) {
        const double f = device.qubitFrequency(q) / kTwoPi;
        (device.isHighFrequency(q) ? high : low).add(f);
    }
    std::printf("\nfrequency groups (GHz):\n");
    TextTable table({"group", "count", "mean", "std", "min", "max"});
    table.addRow({"low", strformat("%zu", low.count()),
                  fmtFixed(low.mean(), 3), fmtFixed(low.stddev(), 3),
                  fmtFixed(low.min(), 3), fmtFixed(low.max(), 3)});
    table.addRow({"high", strformat("%zu", high.count()),
                  fmtFixed(high.mean(), 3), fmtFixed(high.stddev(), 3),
                  fmtFixed(high.min(), 3), fmtFixed(high.max(), 3)});
    table.print();

    std::printf("\nmean separation: %.2f GHz [paper: 2 GHz]; "
                "relative std targets 5%%.\n",
                high.mean() - low.mean());
    std::printf("every edge couples one low and one high qubit "
                "(checkerboard), matching Fig. 7.\n");
    std::printf("edges: %zu\n", device.coupling().edges().size());
    return 0;
}
