#!/usr/bin/env python3
"""CI bench-regression gate.

Reads BENCH_synth.json, BENCH_fleet.json, and BENCH_recalib.json
(produced by `bench_synth --quick`, `bench_fleet --quick`, and
`bench_recalib --quick`) and gates on the floors committed in
bench/baselines.json:

  * every workload's engine/serial agreement (results_match),
  * fleet bit-determinism at 1 vs N shards,
  * cache speedup and hit-rate floors,
  * cross-device sharing floors for multi-device fleets,
  * recalibration: sync-vs-overlapped bit-determinism, end-to-end
    speedup, overlap ratio, and a zero-compile-path-stall ceiling.

Exits nonzero with one line per violated floor. Pure stdlib.

Usage: scripts/check_bench.py [--synth PATH] [--fleet PATH]
                              [--recalib PATH] [--baselines PATH]
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_synth(bench, base, failures):
    floors = base.get("synth", {})
    workloads = bench.get("workloads", {})
    # Every workload with a committed floor must be present: a
    # renamed/dropped workload must not read as green.
    expected = set(floors.get("min_speedup", {})) | set(
        floors.get("min_hit_rate", {})
    )
    for name in sorted(expected - set(workloads)):
        failures.append(
            f"synth[{name}]: workload missing from bench output"
        )
    for name, wl in workloads.items():
        if floors.get("require_results_match") and not wl.get(
            "results_match"
        ):
            failures.append(
                f"synth[{name}]: engine/serial results diverged "
                "(results_match=false)"
            )
        floor = floors.get("min_speedup", {}).get(name)
        if floor is not None and wl.get("speedup", 0.0) < floor:
            failures.append(
                f"synth[{name}]: speedup {wl.get('speedup')}x below "
                f"floor {floor}x"
            )
        floor = floors.get("min_hit_rate", {}).get(name)
        if floor is not None and wl.get("cache_hit_rate", 0.0) < floor:
            failures.append(
                f"synth[{name}]: cache hit rate "
                f"{wl.get('cache_hit_rate')} below floor {floor}"
            )


def check_fleet(bench, base, failures):
    floors = base.get("fleet", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism") and not det.get(
        "results_match"
    ):
        failures.append(
            f"fleet: results at {det.get('shards_a')} vs "
            f"{det.get('shards_b')} shards are not bit-identical"
        )
    multi = [
        f
        for f in bench.get("fleets", {}).values()
        if f.get("devices", 0) >= 2
    ]
    if not multi:
        failures.append("fleet: no multi-device fleet in bench output")
        return
    for f in multi:
        n = f.get("devices")
        floor = floors.get("min_cross_device_hit_rate")
        if (
            floor is not None
            and f.get("cross_device_hit_rate", 0.0) < floor
        ):
            failures.append(
                f"fleet[{n}]: cross-device hit rate "
                f"{f.get('cross_device_hit_rate')} below floor {floor}"
            )
        floor = floors.get("min_hit_rate")
        if floor is not None and f.get("hit_rate", 0.0) < floor:
            failures.append(
                f"fleet[{n}]: hit rate {f.get('hit_rate')} below "
                f"floor {floor}"
            )
        floor = floors.get("min_multi_device_classes")
        if (
            floor is not None
            and f.get("multi_device_classes", 0) < floor
        ):
            failures.append(
                f"fleet[{n}]: only {f.get('multi_device_classes')} "
                f"multi-device classes (floor {floor})"
            )


def check_recalib(bench, base, failures):
    floors = base.get("recalib", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism") and not det.get(
        "results_match"
    ):
        failures.append(
            "recalib: post-cycle reports of the synchronous and "
            "overlapped runs are not bit-identical"
        )
    async_side = bench.get("async", {})
    floor = floors.get("min_speedup")
    if floor is not None and bench.get("speedup", 0.0) < floor:
        failures.append(
            f"recalib: end-to-end speedup {bench.get('speedup')}x "
            f"below floor {floor}x"
        )
    ceiling = floors.get("max_compile_stall_ms")
    if (
        ceiling is not None
        and async_side.get("compile_stall_ms", 0.0) > ceiling
    ):
        failures.append(
            "recalib: overlapped compile path stalled "
            f"{async_side.get('compile_stall_ms')} ms "
            f"(ceiling {ceiling} ms)"
        )
    floor = floors.get("min_overlap_ratio")
    if (
        floor is not None
        and async_side.get("overlap_ratio", 0.0) < floor
    ):
        failures.append(
            f"recalib: overlap ratio {async_side.get('overlap_ratio')}"
            f" below floor {floor}"
        )
    floor = floors.get("min_recalibrated_edges")
    if (
        floor is not None
        and bench.get("fleet", {}).get("recalibrated_edges", 0) < floor
    ):
        failures.append(
            "recalib: only "
            f"{bench.get('fleet', {}).get('recalibrated_edges')} "
            f"edges recalibrated (floor {floor})"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--synth", default=REPO / "BENCH_synth.json")
    parser.add_argument("--fleet", default=REPO / "BENCH_fleet.json")
    parser.add_argument(
        "--recalib", default=REPO / "BENCH_recalib.json"
    )
    parser.add_argument(
        "--baselines", default=REPO / "bench" / "baselines.json"
    )
    args = parser.parse_args()

    base = load(args.baselines)
    failures = []
    check_synth(load(args.synth), base, failures)
    check_fleet(load(args.fleet), base, failures)
    check_recalib(load(args.recalib), base, failures)

    if failures:
        print("bench gate: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench gate: OK (results_match, determinism, and all "
          "committed floors hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
