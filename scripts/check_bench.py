#!/usr/bin/env python3
"""CI bench-regression gate.

Reads BENCH_synth.json, BENCH_fleet.json, BENCH_recalib.json,
BENCH_persist.json, BENCH_serve.json, BENCH_mat4.json,
BENCH_obs.json, and BENCH_scale.json (produced by the corresponding
--quick bench runs) and gates on the floors committed in
bench/baselines.json:

  * every workload's engine/serial agreement (results_match),
  * fleet bit-determinism at 1 vs N shards,
  * cache speedup and hit-rate floors,
  * cross-device sharing floors for multi-device fleets,
  * recalibration: sync-vs-overlapped bit-determinism, end-to-end
    speedup, overlap ratio, and a zero-compile-path-stall ceiling,
  * persistence: warm-start speedup and hit rate, warm/cold
    bit-identical reports, corrupt-snapshot rejection, and the
    retirement sweep shrinking the snapshot,
  * mat4 kernels: scalar-vs-SIMD bit-identity on every kernel, and
    speedup floors (per kernel and geomean) that apply only when the
    SIMD backend is available on the runner (simd_available),
  * serving: concurrent-vs-serial per-request bit-identity, the
    epoch-swap digest change, reject-with-status admission under
    saturation, and open-loop throughput/p99 sanity bounds,
  * plan cache: the Zipf sub-suite's plan-on vs plan-off digest
    bit-identity, the p50 speedup floor, and both tiers (memo and
    replay) actually serving,
  * fleet scale: 1-vs-N-shard bit-determinism on a 100+ qubit
    heavy-hex lattice with per-edge heterogeneous bases, cross-edge
    shared-cache dedupe and plan-memo floors at the top curve point,
    plan retirement after the drift cycle, a top-point wall-time
    ceiling, and nonzero settled-snapshot bytes on every point,
  * observability: a ceiling on the disabled-path span cost (the
    zero-perturbation budget: a few ns) and the enabled-path cost,
    a valid Chrome-trace export round trip, and byte-identical
    compile/health/fleet digests traced vs untraced,
  * fault injection (only when the recalib/serve JSON carries a
    "faults" section, i.e. it came from `bench_recalib --faults` /
    `bench_serve --faults`): the same-fault-seed replay must be
    bit-identical, every quarantined edge must have served its
    last-good basis, and the serve.admit shed pattern must replay
    identically.

A missing or unparseable BENCH file is reported as clear,
path-bearing FAIL rows -- one summary row plus one row per floor key
committed in its baselines section -- never a traceback or a silent
pass. A baselines section with no consuming bench check at all (a
renamed or dropped bench) also fails loudly.

Every committed floor is evaluated and printed as one row of a diff
table (key, observed, requirement, status), so a failing run shows
the complete picture instead of the first violation only. Exits
nonzero when any row fails. Pure stdlib.

Usage: scripts/check_bench.py [--synth PATH] [--fleet PATH]
                              [--recalib PATH] [--persist PATH]
                              [--serve PATH] [--mat4 PATH]
                              [--obs PATH] [--scale PATH]
                              [--baselines PATH]
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


class Gate:
    """Collects one diff-table row per evaluated floor."""

    def __init__(self):
        self.rows = []

    def check(self, key, observed, requirement, ok):
        self.rows.append((key, observed, requirement, bool(ok)))

    def floor(self, key, observed, floor):
        self.check(key, observed, f">= {floor}", observed >= floor)

    def ceiling(self, key, observed, ceiling):
        self.check(key, observed, f"<= {ceiling}", observed <= ceiling)

    def require(self, key, observed):
        self.check(key, observed, "== true", bool(observed))

    def missing(self, key, detail):
        self.check(key, f"missing ({detail})", "present", False)

    @property
    def failures(self):
        return [r for r in self.rows if not r[3]]

    def print_table(self):
        def fmt(v):
            if isinstance(v, bool):
                return "true" if v else "false"
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        rows = [(k, fmt(o), str(r), "ok" if ok else "FAIL")
                for k, o, r, ok in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(
                ("key", "observed", "requirement", "status")
            )
        ]
        header = ("key", "observed", "requirement", "status")
        print(
            f"{header[0]:<{widths[0]}}  {header[1]:>{widths[1]}}  "
            f"{header[2]:>{widths[2]}}  {header[3]:>{widths[3]}}"
        )
        for k, o, r, s in rows:
            print(
                f"{k:<{widths[0]}}  {o:>{widths[1]}}  "
                f"{r:>{widths[2]}}  {s:>{widths[3]}}"
            )


def check_synth(bench, base, gate):
    floors = base.get("synth", {})
    workloads = bench.get("workloads", {})
    if floors.get("require_backend_reported"):
        gate.check(
            "synth.mat4_backend",
            bench.get("mat4_backend", ""),
            "in {scalar, avx2}",
            bench.get("mat4_backend") in ("scalar", "avx2"),
        )
    # Every workload with a committed floor must be present: a
    # renamed/dropped workload must not read as green.
    expected = set(floors.get("min_speedup", {})) | set(
        floors.get("min_hit_rate", {})
    )
    for name in sorted(expected - set(workloads)):
        gate.missing(f"synth[{name}]", "workload absent from output")
    for name, wl in sorted(workloads.items()):
        if floors.get("require_results_match"):
            gate.require(
                f"synth[{name}].results_match", wl.get("results_match")
            )
        if floors.get("require_report_digest"):
            gate.check(
                f"synth[{name}].report_digest",
                wl.get("report_digest", "(absent)"),
                "present",
                bool(wl.get("report_digest")),
            )
        floor = floors.get("min_speedup", {}).get(name)
        if floor is not None:
            gate.floor(
                f"synth[{name}].speedup", wl.get("speedup", 0.0), floor
            )
        floor = floors.get("min_hit_rate", {}).get(name)
        if floor is not None:
            gate.floor(
                f"synth[{name}].cache_hit_rate",
                wl.get("cache_hit_rate", 0.0),
                floor,
            )


def check_fleet(bench, base, gate):
    floors = base.get("fleet", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism"):
        gate.check(
            "fleet.determinism.results_match",
            bool(det.get("results_match")),
            f"{det.get('shards_a')} vs {det.get('shards_b')} shards "
            "bit-identical",
            det.get("results_match"),
        )
    multi = [
        f
        for f in bench.get("fleets", {}).values()
        if f.get("devices", 0) >= 2
    ]
    if not multi:
        gate.missing("fleet[multi-device]", "no fleet with >= 2 devices")
        return
    for f in multi:
        n = f.get("devices")
        floor = floors.get("min_cross_device_hit_rate")
        if floor is not None:
            gate.floor(
                f"fleet[{n}].cross_device_hit_rate",
                f.get("cross_device_hit_rate", 0.0),
                floor,
            )
        floor = floors.get("min_hit_rate")
        if floor is not None:
            gate.floor(
                f"fleet[{n}].hit_rate", f.get("hit_rate", 0.0), floor
            )
        floor = floors.get("min_multi_device_classes")
        if floor is not None:
            gate.floor(
                f"fleet[{n}].multi_device_classes",
                f.get("multi_device_classes", 0),
                floor,
            )


def check_recalib(bench, base, gate):
    floors = base.get("recalib", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism"):
        gate.check(
            "recalib.determinism.results_match",
            bool(det.get("results_match")),
            "sync vs overlapped bit-identical",
            det.get("results_match"),
        )
    async_side = bench.get("async", {})
    floor = floors.get("min_speedup")
    if floor is not None:
        gate.floor("recalib.speedup", bench.get("speedup", 0.0), floor)
    ceiling = floors.get("max_compile_stall_ms")
    if ceiling is not None:
        gate.ceiling(
            "recalib.async.compile_stall_ms",
            async_side.get("compile_stall_ms", 0.0),
            ceiling,
        )
    floor = floors.get("min_overlap_ratio")
    if floor is not None:
        gate.floor(
            "recalib.async.overlap_ratio",
            async_side.get("overlap_ratio", 0.0),
            floor,
        )
    floor = floors.get("min_recalibrated_edges")
    if floor is not None:
        gate.floor(
            "recalib.fleet.recalibrated_edges",
            bench.get("fleet", {}).get("recalibrated_edges", 0),
            floor,
        )
    # Degraded-mode contract: only present when the producing run was
    # `bench_recalib --faults` (the CI fault-sweep job); the regular
    # quick pass carries no faults section and skips these rows.
    faults = bench.get("faults")
    if faults is not None:
        gate.require(
            "recalib.faults.replay_identical",
            faults.get("replay_identical"),
        )
        gate.require(
            "recalib.faults.served_last_good",
            faults.get("served_last_good"),
        )


def check_persist(bench, base, gate):
    floors = base.get("persist", {})
    if floors.get("require_results_match"):
        gate.check(
            "persist.results_match",
            bool(bench.get("results_match")),
            "warm pass bit-identical to cold",
            bench.get("results_match"),
        )
    if floors.get("require_corrupt_rejected"):
        gate.require(
            "persist.corrupt_rejected", bench.get("corrupt_rejected")
        )
    floor = floors.get("min_warm_speedup")
    if floor is not None:
        gate.floor(
            "persist.warm_speedup", bench.get("speedup", 0.0), floor
        )
    floor = floors.get("min_warm_hit_rate")
    if floor is not None:
        gate.floor(
            "persist.warm.hit_rate",
            bench.get("warm", {}).get("hit_rate", 0.0),
            floor,
        )
    retire = bench.get("retirement", {})
    if floors.get("require_retirement_reduced"):
        gate.check(
            "persist.retirement.reduced",
            bool(retire.get("reduced")),
            f"{retire.get('bytes_before')} -> "
            f"{retire.get('bytes_after')} bytes after the sweep",
            retire.get("reduced"),
        )
    floor = floors.get("min_retired_classes")
    if floor is not None:
        gate.floor(
            "persist.retirement.retired", retire.get("retired", 0),
            floor,
        )


def check_serve(bench, base, gate):
    floors = base.get("serve", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism"):
        gate.check(
            "serve.determinism.bit_identical",
            bool(det.get("bit_identical")),
            f"{det.get('requests')} requests x "
            f"{det.get('interleavings')} interleavings bit-identical",
            det.get("bit_identical"),
        )
    swap = bench.get("epoch_swap", {})
    if floors.get("require_epoch_swap_digest_change"):
        gate.check(
            "serve.epoch_swap.digest_changed",
            bool(swap.get("digest_changed")),
            f"epoch {swap.get('old_epoch')} -> "
            f"{swap.get('new_epoch')} changes digests",
            swap.get("digest_changed"),
        )
    if floors.get("require_served_during_swap"):
        gate.require(
            "serve.epoch_swap.served_during_swap",
            swap.get("served_during_swap"),
        )
    adm = bench.get("admission", {})
    if floors.get("require_admission_rejects_with_status"):
        gate.check(
            "serve.admission.rejects_with_status",
            f"{adm.get('rejected', 0)} of {adm.get('burst', 0)}",
            "rejected >= 1, all futures resolved",
            adm.get("rejected", 0) >= 1 and adm.get("all_resolved"),
        )
    zipf = bench.get("zipf", {})
    if floors.get("require_zipf_digests_match"):
        gate.check(
            "serve.zipf.digests_match",
            bool(zipf.get("digests_match")),
            f"{zipf.get('requests', 0)} responses bit-identical "
            "plan-on vs plan-off",
            zipf.get("digests_match"),
        )
    floor = floors.get("min_zipf_p50_speedup")
    if floor is not None:
        gate.floor(
            "serve.zipf.p50_speedup",
            zipf.get("zipf_p50_speedup", 0.0),
            floor,
        )
    floor = floors.get("min_zipf_memo_hits")
    if floor is not None:
        gate.floor(
            "serve.zipf.memo_hits", zipf.get("memo_hits", 0), floor
        )
    floor = floors.get("min_zipf_replay_hits")
    if floor is not None:
        gate.floor(
            "serve.zipf.replay_hits",
            zipf.get("replay_hits", 0),
            floor,
        )
    open_loop = bench.get("open_loop", {})
    floor = floors.get("min_requests")
    if floor is not None:
        gate.floor(
            "serve.open_loop.requests",
            open_loop.get("requests", 0),
            floor,
        )
    floor = floors.get("min_throughput_rps")
    if floor is not None:
        gate.floor(
            "serve.open_loop.throughput_rps",
            open_loop.get("throughput_rps", 0.0),
            floor,
        )
    ceiling = floors.get("max_p99_ms")
    if ceiling is not None:
        gate.ceiling(
            "serve.open_loop.p99_ms",
            open_loop.get("p99_ms", 0.0),
            ceiling,
        )
    # Degraded-mode contract, present only for `bench_serve --faults`
    # output (the CI fault-sweep job).
    faults = bench.get("faults")
    if faults is not None:
        gate.require(
            "serve.faults.replay_identical",
            faults.get("replay_identical"),
        )
        gate.require(
            "serve.faults.quarantined_served_ok",
            faults.get("quarantined_served_ok"),
        )


def check_mat4(bench, base, gate):
    floors = base.get("mat4", {})
    kernels = bench.get("kernels", {})
    if floors.get("require_kernels_match"):
        gate.check(
            "mat4.kernels_match",
            bool(bench.get("kernels_match")),
            "scalar and SIMD backends bit-identical",
            bench.get("kernels_match"),
        )
        for name, k in sorted(kernels.items()):
            gate.require(f"mat4[{name}].match", k.get("match"))
    # Speedup floors only bind when the SIMD backend actually ran on
    # this host (scalar-only builds/runners report simd_available
    # false and trivially-1.0 speedups).
    if not bench.get("simd_available"):
        gate.check(
            "mat4.simd_available",
            False,
            "speedup floors skipped (scalar-only host/build)",
            True,
        )
        return
    expected = set(floors.get("min_kernel_speedup", {}))
    for name in sorted(expected - set(kernels)):
        gate.missing(f"mat4[{name}]", "kernel absent from output")
    for name, k in sorted(kernels.items()):
        floor = floors.get("min_kernel_speedup", {}).get(name)
        if floor is not None:
            gate.floor(
                f"mat4[{name}].speedup", k.get("speedup", 0.0), floor
            )
    floor = floors.get("min_speedup_geomean")
    if floor is not None:
        gate.floor(
            "mat4.speedup_geomean",
            bench.get("speedup_geomean", 0.0),
            floor,
        )


def check_obs(bench, base, gate):
    floors = base.get("obs", {})
    spans = bench.get("spans", {})
    ceiling = floors.get("max_disabled_ns_per_span")
    if ceiling is not None:
        gate.ceiling(
            "obs.spans.disabled_ns_per_span",
            spans.get("disabled_ns_per_span", float("inf")),
            ceiling,
        )
    ceiling = floors.get("max_enabled_ns_per_span")
    if ceiling is not None:
        gate.ceiling(
            "obs.spans.enabled_ns_per_span",
            spans.get("enabled_ns_per_span", float("inf")),
            ceiling,
        )
    if floors.get("require_export_valid"):
        exp = bench.get("export", {})
        gate.check(
            "obs.export.valid",
            bool(exp.get("valid")),
            f"{exp.get('events', 0)} events round-trip Chrome JSON",
            exp.get("valid"),
        )
    # The zero-perturbation contract: tracing ON changes no committed
    # digest (only wall-clock fields may move).
    if floors.get("require_digest_neutral"):
        dig = bench.get("digests", {})
        gate.check(
            "obs.digests.compile_match",
            bool(dig.get("compile_match")),
            f"{dig.get('requests', 0)} responses byte-identical "
            "traced vs untraced",
            dig.get("compile_match"),
        )
        gate.require(
            "obs.digests.health_match", dig.get("health_match")
        )
        gate.require("obs.digests.fleet_match", dig.get("fleet_match"))


def check_scale(bench, base, gate):
    floors = base.get("scale", {})
    det = bench.get("determinism", {})
    if floors.get("require_determinism"):
        gate.check(
            "scale.determinism.results_match",
            bool(det.get("results_match")),
            f"{det.get('shards_a')} vs {det.get('shards_b')} shards "
            "bit-identical",
            det.get("results_match"),
        )
    floor = floors.get("min_determinism_qubits")
    if floor is not None:
        gate.floor(
            "scale.determinism.qubits", det.get("qubits", 0), floor
        )
    top = bench.get("top", {})
    floor = floors.get("min_top_edges")
    if floor is not None:
        gate.floor("scale.top.edges", top.get("edges", 0), floor)
    floor = floors.get("min_dedupe_ratio")
    if floor is not None:
        gate.floor(
            "scale.top.dedupe_ratio",
            top.get("dedupe_ratio", 0.0),
            floor,
        )
    floor = floors.get("min_plan_memo_hits")
    if floor is not None:
        gate.floor(
            "scale.top.plan_memo_hits",
            top.get("plan_memo_hits", 0),
            floor,
        )
    floor = floors.get("min_plans_retired")
    if floor is not None:
        gate.floor(
            "scale.top.plans_retired",
            top.get("plans_retired", 0),
            floor,
        )
    ceiling = floors.get("max_top_point_wall_ms")
    if ceiling is not None:
        gate.ceiling(
            "scale.top.point_wall_ms",
            top.get("point_wall_ms", float("inf")),
            ceiling,
        )
    # Snapshot accounting must be live on every curve point: a point
    # whose settled cache would serialize to zero bytes cached
    # nothing at all.
    if floors.get("require_snapshot_bytes"):
        for name, point in sorted(bench.get("points", {}).items()):
            gate.floor(
                f"scale[{name}].snapshot_bytes",
                point.get("snapshot_bytes", 0),
                1,
            )


def floor_keys(section):
    """Flattened floor keys of one baselines section (nested dicts
    like min_speedup.gate_sweep become dotted keys)."""
    keys = []
    for key, value in sorted(section.items()):
        if isinstance(value, dict):
            keys.extend(f"{key}.{sub}" for sub in sorted(value))
        else:
            keys.append(key)
    return keys


def report_missing(name, path, detail, base, gate):
    """A BENCH file a baselines section references was never emitted:
    one summary row plus one row per committed floor key, so the diff
    table shows exactly which gates silently stopped binding."""
    gate.missing(name, f"{path}: {detail}")
    for key in floor_keys(base.get(name, {})):
        gate.missing(f"{name}.{key}", "BENCH file absent")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--synth", default=REPO / "BENCH_synth.json")
    parser.add_argument("--fleet", default=REPO / "BENCH_fleet.json")
    parser.add_argument(
        "--recalib", default=REPO / "BENCH_recalib.json"
    )
    parser.add_argument(
        "--persist", default=REPO / "BENCH_persist.json"
    )
    parser.add_argument("--serve", default=REPO / "BENCH_serve.json")
    parser.add_argument("--mat4", default=REPO / "BENCH_mat4.json")
    parser.add_argument("--obs", default=REPO / "BENCH_obs.json")
    parser.add_argument("--scale", default=REPO / "BENCH_scale.json")
    parser.add_argument(
        "--baselines", default=REPO / "bench" / "baselines.json"
    )
    args = parser.parse_args()

    try:
        base = load(args.baselines)
    except (OSError, json.JSONDecodeError) as err:
        print(
            f"bench gate: cannot read baselines {args.baselines}: "
            f"{err}",
            file=sys.stderr,
        )
        return 1
    gate = Gate()
    consumers = (
        ("synth", args.synth, check_synth),
        ("fleet", args.fleet, check_fleet),
        ("recalib", args.recalib, check_recalib),
        ("persist", args.persist, check_persist),
        ("serve", args.serve, check_serve),
        ("mat4", args.mat4, check_mat4),
        ("obs", args.obs, check_obs),
        ("scale", args.scale, check_scale),
    )
    # Every baselines section must have a consumer above: a section
    # whose BENCH file is never emitted (renamed bench, dropped run)
    # must fail loudly instead of reading as green forever.
    known = {"_comment"} | {name for name, _, _ in consumers}
    for section in sorted(set(base) - known):
        gate.check(
            f"baselines[{section}]",
            "no BENCH consumer",
            "section consumed by a bench check",
            False,
        )
    for name, path, check in consumers:
        try:
            check(load(path), base, gate)
        except OSError as err:
            # Clear, path-bearing rows (the bench binary did not run
            # or wrote elsewhere), not a traceback -- one per floor
            # key, so nothing silently stops binding.
            report_missing(
                name, path, err.strerror or err, base, gate
            )
        except json.JSONDecodeError as err:
            report_missing(
                name, path, f"invalid JSON ({err})", base, gate
            )

    gate.print_table()
    failures = gate.failures
    if failures:
        print(
            f"bench gate: FAIL ({len(failures)} of {len(gate.rows)} "
            "checks)"
        )
        return 1
    print(
        f"bench gate: OK (all {len(gate.rows)} committed checks hold)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
