#!/usr/bin/env bash
# Tier-1 verification plus a synthesis-engine smoke run.
#
#   scripts/verify.sh [build-dir]
#
# Mirrors what CI runs: configure (warnings-as-errors on the library),
# build everything, run the test suite, then a quick bench_synth pass
# that checks engine/serial agreement and emits BENCH_synth.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

"$BUILD_DIR/bench_synth" --quick
echo "verify: OK"
