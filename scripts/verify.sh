#!/usr/bin/env bash
# Tier-1 verification plus bench smokes -- the single entry point CI
# calls.
#
#   scripts/verify.sh [--quick] [build-dir]
#
#   --quick    skip the bench pass (bench_synth + bench_fleet +
#              bench_recalib + bench_persist + bench_serve +
#              bench_mat4 + bench_obs + bench_scale +
#              scripts/check_bench.py); the docs gate and the
#              mat4, fleet, recalib, persist, serve, obs, scale,
#              and fault smokes still run so every matrix job exercises the SIMD
#              kernel bit-identity check, the sharded driver, the
#              async retune pipeline, the snapshot round trip, the
#              serving daemon's admission/determinism contracts, the
#              tracing zero-perturbation contract, and the
#              degraded-mode replay contract.
#
# Environment:
#   CMAKE_BUILD_TYPE   build configuration (default Release)
#   CMAKE_ARGS         extra -D flags for the configure step
#   CC / CXX           compiler selection (honored by cmake)
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    -*) echo "usage: scripts/verify.sh [--quick] [build-dir]" >&2
        exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
echo "=== verify: ${CXX:-c++} ($(${CXX:-c++} --version | head -n1)), " \
     "build type ${BUILD_TYPE}, mode $([ "$QUICK" = 1 ] && echo quick || echo full) ==="

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Dispatched Mat4 kernel backend of this build/host (scalar or
# avx2, plus the probed host ISA).
"$BUILD_DIR/bench_mat4" --backend

# --timeout turns a hung test (a deadlocked waiter, a quarantined
# edge never released) into a bounded failure instead of a stuck job.
ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 1200 \
      -j"$(nproc)"

# Mat4 kernel smoke: scalar-vs-SIMD bit-identity on every dispatched
# kernel is the exit code.
"$BUILD_DIR/bench_mat4" --smoke

# Fleet smoke: 2-device shard run with cross-device dedupe and
# bit-determinism asserts baked into the binary's exit code.
"$BUILD_DIR/bench_fleet" --smoke

# Recalib smoke: one overlapped drift cycle; sync-vs-async
# bit-determinism and the zero-stall assert are the exit code.
"$BUILD_DIR/bench_recalib" --smoke

# Persist smoke: snapshot save -> warm restart -> bit-identical
# compile, retirement sweep shrinkage, and corrupt-snapshot
# rejection are the exit code.
"$BUILD_DIR/bench_persist" --smoke

# Serve smoke: open-loop load on the CompileService; interleaving
# bit-identity, the epoch-swap digest change, and reject-with-status
# admission are the exit code.
"$BUILD_DIR/bench_serve" --smoke

# Obs smoke: span overhead, exporter round trip, and traced-vs-
# untraced digest neutrality (the zero-perturbation contract) are
# the exit code.
"$BUILD_DIR/bench_obs" --smoke

# Scale smoke: one heterogeneous heavy-hex lattice through the full
# serving lifecycle; sharded bit-determinism, cross-edge dedupe, and
# plan-tier traffic are the exit code.
"$BUILD_DIR/bench_scale" --smoke

# Docs gate: every intra-repo link and code path in docs/*.md and
# README.md must resolve against the working tree.
python3 scripts/check_docs.py

# Fault smokes: degraded-mode replays under pinned fault seeds (ones
# that retry, contain, and quarantine at smoke scale; for serve, shed
# at admission and serve through a fully quarantined fleet). Run
# BEFORE the --quick bench pass below so the BENCH_*.json files the
# bench gate reads are the non-faulted ones.
"$BUILD_DIR/bench_recalib" --faults 1 --smoke
"$BUILD_DIR/bench_serve" --faults 1 --smoke

if [ "$QUICK" = 0 ]; then
  "$BUILD_DIR/bench_synth" --quick
  "$BUILD_DIR/bench_fleet" --quick
  "$BUILD_DIR/bench_recalib" --quick
  "$BUILD_DIR/bench_persist" --quick
  "$BUILD_DIR/bench_serve" --quick
  "$BUILD_DIR/bench_mat4" --quick
  "$BUILD_DIR/bench_obs" --quick
  "$BUILD_DIR/bench_scale" --quick
  python3 scripts/check_bench.py
fi
echo "verify: OK"
