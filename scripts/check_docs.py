#!/usr/bin/env python3
"""CI docs gate: no stale path ever survives in the docs book.

Scans README.md and docs/*.md and validates two things against the
working tree:

  * every intra-repo markdown link ``[text](target)`` resolves —
    the target file exists (relative links resolve against the
    linking file's directory, root-relative ones against the repo
    root), and a ``#fragment`` on a markdown target matches a real
    heading of that file (GitHub slugification);
  * every backticked code path exists. A backticked token counts as
    a code path when it contains a ``/`` and is made only of path
    characters (``foo/bar.hpp``, ``src/core/fleet``,
    ``BENCH_*.json`` globs, trailing ``/`` for directories). Bare
    module names are resolved like the prose uses them:
    ``synth/plan_cache`` matches ``src/synth/plan_cache.hpp``; a
    row-local name like ``async/recalib_scheduler`` matches one
    directory level deeper under ``src/``.

Failures print ``file:line: message`` (clickable in CI logs) and
the script exits nonzero. External links (http/https/mailto) and
pure-``#`` self-links are ignored. Pure stdlib.

Usage: scripts/check_docs.py [files...]   (default: README.md docs/*.md)
"""

import glob
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Top-level directories/files a root-relative code path may start
# with. Keeps prose like `gcc/clang` or `memo/replay` from being
# mistaken for paths.
ROOT_SEGMENTS = {
    "src", "docs", "bench", "tests", "scripts", "examples",
    ".github", "build",
}

# Module paths without a root prefix (`core/fleet`, `obs/trace`)
# resolve under src/ with these extensions.
MODULE_EXTENSIONS = ("", ".hpp", ".cpp", ".py", ".sh", ".md")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`]+)`")
PATHY_RE = re.compile(r"^[A-Za-z0-9_.*/-]+$")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def heading_slug(text):
    """GitHub-style anchor slug of one heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", text).strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text)


def file_anchors(md_path):
    anchors = set()
    for line in md_path.read_text(encoding="utf-8").splitlines():
        m = HEADING_RE.match(line)
        if m:
            anchors.add(heading_slug(m.group(1)))
    return anchors


def resolve_glob(base, pattern):
    """True when `pattern` (may contain *) names something under
    `base`."""
    if "*" in pattern:
        return bool(glob.glob(str(base / pattern)))
    return (base / pattern).exists()


def code_path_ok(token):
    """True when a backticked path-looking token names something in
    the repo (module-name fallbacks included)."""
    token = token.rstrip("/")
    first = token.split("/", 1)[0]
    if first in ROOT_SEGMENTS:
        return resolve_glob(REPO, token)
    # Module form: `synth/plan_cache` -> src/synth/plan_cache.hpp;
    # one level deeper for row-local names like
    # `async/recalib_scheduler` -> src/calib/async/... .
    for ext in MODULE_EXTENSIONS:
        if resolve_glob(REPO / "src", token + ext):
            return True
        if glob.glob(str(REPO / "src" / "*" / (token + ext))):
            return True
    return False


def is_code_path_candidate(token):
    if not PATHY_RE.match(token):
        return False
    if "/" not in token:
        # Slashless: only the committed BENCH artifacts are checked
        # (generic filenames in prose are too ambiguous to resolve).
        return bool(re.match(r"^BENCH_[\w*]+\.json$", token))
    # Every segment must carry a letter: keeps `1/2/4/8` and
    # version-number prose out.
    return all(
        re.search(r"[A-Za-z]", seg) for seg in token.split("/") if seg
    )


def check_file(md_path, failures):
    text = md_path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                anchor, path = target[1:], md_path
            else:
                path_part, _, anchor = target.partition("#")
                path = (
                    REPO / path_part
                    if path_part.startswith((".github", "docs/"))
                    else md_path.parent / path_part
                )
                if not path.exists():
                    path = REPO / path_part  # root-relative fallback
                if not path.exists():
                    failures.append(
                        f"{md_path.relative_to(REPO)}:{lineno}: "
                        f"broken link target '{target}'"
                    )
                    continue
            if anchor and path.suffix == ".md":
                if anchor not in file_anchors(path):
                    failures.append(
                        f"{md_path.relative_to(REPO)}:{lineno}: "
                        f"no heading '#{anchor}' in "
                        f"{path.relative_to(REPO)}"
                    )
        for m in CODE_RE.finditer(line):
            token = m.group(1)
            if not is_code_path_candidate(token):
                continue
            if "/" not in token:  # BENCH_*.json artifacts
                if not resolve_glob(REPO, token):
                    failures.append(
                        f"{md_path.relative_to(REPO)}:{lineno}: "
                        f"stale artifact reference `{token}`"
                    )
                continue
            if not code_path_ok(token):
                failures.append(
                    f"{md_path.relative_to(REPO)}:{lineno}: "
                    f"stale code path `{token}`"
                )


def main(argv):
    if argv:
        files = [pathlib.Path(a).resolve() for a in argv]
    else:
        files = [REPO / "README.md"] + sorted(
            (REPO / "docs").glob("*.md")
        )
    failures = []
    checked = 0
    for md in files:
        if not md.exists():
            failures.append(f"{md}: file does not exist")
            continue
        checked += 1
        check_file(md, failures)
    for f in failures:
        print(f)
    if failures:
        print(f"docs gate: FAIL ({len(failures)} stale references "
              f"across {checked} files)")
        return 1
    print(f"docs gate: OK ({checked} files, all links and code "
          "paths resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
